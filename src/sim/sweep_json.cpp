#include "sim/sweep_json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

namespace pofl {

namespace {

/// strtol with the overflow check the bare call silently skips: ERANGE
/// clamps to LONG_MIN/LONG_MAX without any error indication, so
/// `--procs 99999999999999999999` used to sail through parsing and only
/// fail (or worse, truncate) downstream. Rejects unless the whole token is
/// a long that survived un-clamped.
bool checked_strtol(const char* s, char** end, long& out) {
  errno = 0;
  out = std::strtol(s, end, 10);
  return *end != s && errno != ERANGE;
}

}  // namespace

bool parse_shard_spec(const char* spec, int& index, int& count) {
  char* end = nullptr;
  long i = 0;
  long n = 0;
  if (!checked_strtol(spec, &end, i) || *end != '/') return false;
  const char* count_str = end + 1;
  if (!checked_strtol(count_str, &end, n) || *end != '\0') return false;
  if (n < 1 || i < 0 || i >= n || n > 1'000'000) return false;
  index = static_cast<int>(i);
  count = static_cast<int>(n);
  return true;
}

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        args.error = true;
        return args;
      }
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      if (i + 1 >= argc || !parse_shard_spec(argv[++i], args.shard_index, args.shard_count)) {
        args.error = true;
        return args;
      }
      args.shard_set = true;
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      if (i + 1 >= argc) {
        args.error = true;
        return args;
      }
      // Range-check the long before the int cast: 2^32+1 used to truncate
      // to a silently wrong small --procs value.
      char* end = nullptr;
      long procs = 0;
      args.procs_set = true;
      if (!checked_strtol(argv[++i], &end, procs) || *end != '\0' || procs < 1 ||
          procs > 1024) {
        args.error = true;
        return args;
      }
      args.procs = static_cast<int>(procs);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        args.error = true;
        return args;
      }
      char* end = nullptr;
      long threads = 0;
      args.threads_set = true;
      if (!checked_strtol(argv[++i], &end, threads) || *end != '\0' || threads < 0 ||
          threads > 1'000'000) {
        args.error = true;
        return args;
      }
      args.num_threads = static_cast<int>(threads);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      // Unknown flags (misspellings, --json=path) must fail loudly, not
      // silently become positionals.
      args.error = true;
      return args;
    } else {
      args.positional.emplace_back(argv[i]);
    }
  }
  return args;
}

void JsonWriter::comma() {
  if (!needs_comma_.empty() && needs_comma_.back()) out_ += ',';
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  if (has_pending_key_) {
    out_ += '"';
    out_ += json_escape(pending_key_);
    out_ += "\":";
    has_pending_key_ = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  pending_key_ = k;
  has_pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_number(const std::string& spelling) {
  comma();
  out_ += spelling;
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_json(JsonWriter& w, const SweepStats& stats) {
  w.begin_object();
  w.key("total").value(stats.total);
  w.key("promise_broken").value(stats.promise_broken);
  w.key("promise_held").value(stats.promise_held());
  w.key("delivered").value(stats.delivered);
  w.key("looped").value(stats.looped);
  w.key("dropped").value(stats.dropped);
  w.key("invalid").value(stats.invalid);
  w.key("failures_seen").value(stats.failures_seen);
  w.key("hops_delivered").value(stats.hops_delivered);
  w.key("stretch_samples").value(stats.stretch_samples);
  w.key("stretch_sum_q32").value(stats.stretch_sum_q32);
  w.key("stretch_sum").value(stats.stretch_sum());
  w.key("max_stretch").value(stats.max_stretch);
  w.key("oracle_hits").value(stats.oracle_hits);
  w.key("oracle_misses").value(stats.oracle_misses);
  w.key("oracle_evictions").value(stats.oracle_evictions);
  w.key("delivery_rate").value(stats.delivery_rate());
  w.key("loop_rate").value(stats.loop_rate());
  w.key("drop_rate").value(stats.drop_rate());
  w.key("invalid_rate").value(stats.invalid_rate());
  w.key("mean_failures").value(stats.mean_failures());
  w.key("mean_hops").value(stats.mean_hops());
  w.key("mean_stretch").value(stats.mean_stretch());
  w.end_object();
}

void append_json(JsonWriter& w, const SweepReport& report) {
  w.begin_object();
  w.key("totals");
  append_json(w, report.totals);
  w.key("per_pair").begin_array();
  for (const PairStats& row : report.per_pair) {
    w.begin_object();
    w.key("source").value(static_cast<int64_t>(row.source));
    if (row.destination == kNoVertex) {
      w.key("destination").null();
    } else {
      w.key("destination").value(static_cast<int64_t>(row.destination));
    }
    w.key("stats");
    append_json(w, row.stats);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string to_json(const SweepStats& stats) {
  JsonWriter w;
  append_json(w, stats);
  return w.str();
}

std::string to_json(const SweepReport& report) {
  JsonWriter w;
  append_json(w, report);
  return w.str();
}

std::string to_json_shard(const SweepReport& report, int shard_index, int shard_count) {
  // Splices the shard provenance in as the first key of the report object,
  // so a shard file is the plain report JSON plus one marker.
  JsonWriter w;
  w.begin_object();
  w.key("shard").begin_object();
  w.key("index").value(shard_index);
  w.key("count").value(shard_count);
  w.end_object();
  const std::string body = to_json(report);
  return "{" + w.str().substr(1) + "," + body.substr(1);
}

std::string to_json_partial(const SweepReport& report, const IncompleteInfo& incomplete) {
  // Same splice as to_json_shard: the plain report plus one leading
  // provenance block, so parse -> serialize round-trips byte for byte and
  // everything downstream of the "incomplete" key is the ordinary schema.
  JsonWriter w;
  w.begin_object();
  w.key("incomplete").begin_object();
  w.key("shard_count").value(incomplete.shard_count);
  w.key("missing_shards").begin_array();
  for (const int shard : incomplete.missing_shards) w.value(shard);
  w.end_array();
  w.key("attempts").begin_array();
  for (const int attempts : incomplete.attempts) w.value(attempts);
  w.end_array();
  w.end_object();
  const std::string body = to_json(report);
  return "{" + w.str().substr(1) + "," + body.substr(1);
}

// ---- parser ----------------------------------------------------------------
// A minimal recursive-descent JSON reader, just enough for the shard/merge
// round-trip: objects, arrays, strings, numbers (kept as raw spellings so
// integers parse exactly), true/false/null. No dependency, no surprises.

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  /// Byte offset where parsing stopped — on failure, the first byte the
  /// parser could not make sense of (a truncated file stops at its end).
  [[nodiscard]] size_t stop_offset() const { return pos_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.text);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      c = s_[pos_++];
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out += c;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          const long code = std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // The writer only escapes control characters; decode the
          // single-byte range and reject anything it cannot have written.
          if (code < 0 || code > 0xff) return false;
          out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.text = s_.substr(start, pos_ - start);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Sets *error (when requested) and always returns false — the one-line
/// spelling of every semantic parse failure below.
bool fail_parse(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Reads the exact (non-derived) SweepStats fields. Derived rates are
/// recomputed by the accessors, so this is all a byte-exact re-serialization
/// needs: a 12-significant-digit decimal re-parses to a double that prints
/// back to the same 12 digits, and everything else is integral. On failure
/// the error names the first missing/invalid counter.
bool stats_from_json(const JsonValue& obj, SweepStats& out, std::string* error) {
  if (obj.kind != JsonValue::Kind::kObject) {
    return fail_parse(error, "stats value is not an object");
  }
  const auto counter = [&](const char* key, int64_t& v) {
    return json_read_int(obj, key, v) ||
           fail_parse(error, std::string("missing or invalid counter '") + key + "'");
  };
  return counter("total", out.total) && counter("promise_broken", out.promise_broken) &&
         counter("delivered", out.delivered) && counter("looped", out.looped) &&
         counter("dropped", out.dropped) && counter("invalid", out.invalid) &&
         counter("failures_seen", out.failures_seen) &&
         counter("hops_delivered", out.hops_delivered) &&
         counter("stretch_samples", out.stretch_samples) &&
         counter("stretch_sum_q32", out.stretch_sum_q32) &&
         (json_read_double(obj, "max_stretch", out.max_stretch) ||
          fail_parse(error, "missing or invalid 'max_stretch'")) &&
         counter("oracle_hits", out.oracle_hits) && counter("oracle_misses", out.oracle_misses) &&
         counter("oracle_evictions", out.oracle_evictions);
}

/// Reads an array of small non-negative ints (the incomplete-block lists).
bool read_int_array(const JsonValue& value, std::vector<int>& out) {
  if (value.kind != JsonValue::Kind::kArray) return false;
  out.clear();
  for (const JsonValue& item : value.items) {
    if (item.kind != JsonValue::Kind::kNumber) return false;
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(item.text.c_str(), &end, 10);
    if (end == item.text.c_str() || *end != '\0' || errno == ERANGE || v < 0 ||
        v > 1'000'000) {
      return false;
    }
    out.push_back(static_cast<int>(v));
  }
  return true;
}

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, size_t* stop_offset) {
  JsonParser parser(text);
  const bool ok = parser.parse(out);
  if (!ok && stop_offset != nullptr) *stop_offset = parser.stop_offset();
  return ok;
}

void append_json(JsonWriter& w, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(value.boolean);
      break;
    case JsonValue::Kind::kNumber:
      w.raw_number(value.text);
      break;
    case JsonValue::Kind::kString:
      w.value(value.text);
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : value.items) append_json(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, v] : value.fields) {
        w.key(k);
        append_json(w, v);
      }
      w.end_object();
      break;
  }
}

bool json_read_int(const JsonValue& obj, const std::string& key, int64_t& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoll(v->text.c_str(), &end, 10);
  // ERANGE clamps to INT64_MAX/MIN silently; a counter that overflows
  // int64 cannot round-trip, so reject the report instead of corrupting
  // the merge.
  return end != v->text.c_str() && *end == '\0' && errno != ERANGE;
}

bool json_read_double(const JsonValue& obj, const std::string& key, double& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(v->text.c_str(), &end);
  // Same errno discipline as json_read_int: strtod signals overflow
  // (1e999 -> HUGE_VAL) and fatal underflow only through ERANGE, so the
  // bare check used to parse an unrepresentable max_stretch "successfully"
  // and corrupt the merge downstream instead of rejecting the report.
  return end != v->text.c_str() && *end == '\0' && errno != ERANGE;
}

std::optional<SweepReport> report_from_json(const std::string& text, ShardInfo* shard,
                                            std::string* error, IncompleteInfo* incomplete) {
  if (shard != nullptr) *shard = ShardInfo{};
  if (incomplete != nullptr) *incomplete = IncompleteInfo{};
  if (text.empty()) {
    fail_parse(error, "empty file (0 bytes)");
    return std::nullopt;
  }
  JsonValue root;
  JsonParser parser(text);
  if (!parser.parse(root)) {
    // The stop offset is the diagnosis: a truncated/torn shard file stops
    // at its last byte, garbage stops where the garbage starts.
    fail_parse(error, "JSON syntax error at byte offset " +
                          std::to_string(parser.stop_offset()) + " of " +
                          std::to_string(text.size()));
    return std::nullopt;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    fail_parse(error, "top-level value is not an object");
    return std::nullopt;
  }
  if (const JsonValue* spec = root.find("shard"); spec != nullptr && shard != nullptr) {
    int64_t index = 0;
    int64_t count = 0;
    if (spec->kind != JsonValue::Kind::kObject || !json_read_int(*spec, "index", index) ||
        !json_read_int(*spec, "count", count) || count < 1 || index < 0 || index >= count) {
      fail_parse(error, "malformed 'shard' provenance block");
      return std::nullopt;
    }
    shard->index = static_cast<int>(index);
    shard->count = static_cast<int>(count);
    shard->present = true;
  }
  if (const JsonValue* inc = root.find("incomplete"); inc != nullptr && incomplete != nullptr) {
    int64_t count = 0;
    std::vector<int> missing;
    std::vector<int> attempts;
    bool valid = inc->kind == JsonValue::Kind::kObject &&
                 json_read_int(*inc, "shard_count", count) && count >= 1 && count <= 1'000'000;
    const JsonValue* missing_value = valid ? inc->find("missing_shards") : nullptr;
    const JsonValue* attempts_value = valid ? inc->find("attempts") : nullptr;
    valid = valid && missing_value != nullptr && read_int_array(*missing_value, missing) &&
            attempts_value != nullptr && read_int_array(*attempts_value, attempts) &&
            !missing.empty() && missing.size() == attempts.size();
    for (size_t i = 0; valid && i < missing.size(); ++i) {
      // Ascending and in range: the canonical spelling the writer emits,
      // so parse -> serialize stays byte-exact.
      valid = missing[i] < count && (i == 0 || missing[i] > missing[i - 1]);
    }
    if (!valid) {
      fail_parse(error, "malformed 'incomplete' provenance block");
      return std::nullopt;
    }
    incomplete->present = true;
    incomplete->shard_count = static_cast<int>(count);
    incomplete->missing_shards = std::move(missing);
    incomplete->attempts = std::move(attempts);
  }
  SweepReport report;
  const JsonValue* totals = root.find("totals");
  if (totals == nullptr) {
    fail_parse(error, "missing 'totals'");
    return std::nullopt;
  }
  if (!stats_from_json(*totals, report.totals, error)) return std::nullopt;
  const JsonValue* rows = root.find("per_pair");
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) {
    fail_parse(error, "missing or invalid 'per_pair'");
    return std::nullopt;
  }
  report.per_pair.reserve(rows->items.size());
  for (const JsonValue& row : rows->items) {
    const std::string where = " in per_pair row " + std::to_string(report.per_pair.size());
    if (row.kind != JsonValue::Kind::kObject) {
      fail_parse(error, "non-object" + where);
      return std::nullopt;
    }
    PairStats pair;
    int64_t source = 0;
    if (!json_read_int(row, "source", source)) {
      fail_parse(error, "missing or invalid 'source'" + where);
      return std::nullopt;
    }
    pair.source = static_cast<VertexId>(source);
    const JsonValue* destination = row.find("destination");
    if (destination == nullptr) {
      fail_parse(error, "missing 'destination'" + where);
      return std::nullopt;
    }
    if (destination->kind == JsonValue::Kind::kNull) {
      pair.destination = kNoVertex;
    } else {
      int64_t value = 0;
      if (!json_read_int(row, "destination", value)) {
        fail_parse(error, "invalid 'destination'" + where);
        return std::nullopt;
      }
      pair.destination = static_cast<VertexId>(value);
    }
    const JsonValue* stats = row.find("stats");
    std::string stats_error;
    if (stats == nullptr || !stats_from_json(*stats, pair.stats, &stats_error)) {
      fail_parse(error,
                 (stats == nullptr ? std::string("missing 'stats'") : stats_error) + where);
      return std::nullopt;
    }
    report.per_pair.push_back(std::move(pair));
  }
  return report;
}

bool write_json_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << body << "\n";
  return out.good();
}

}  // namespace pofl
