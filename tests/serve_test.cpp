// Conformance suite for the sweep-as-a-service daemon (src/serve).
//
// Four pillars:
//
//   * byte parity — daemon sweep responses reproduce the golden
//     tests/baselines/sweep_*.json recordings bit for bit, including under
//     concurrent clients (the cache stores exact serializations, and the
//     engine's counters are thread- and shard-invariant);
//   * cache discipline — repeat queries hit (and say so in the envelope),
//     LRU eviction fires exactly at capacity, and the hit/miss/eviction
//     counters surfaced by the stats endpoint match the request history;
//   * error containment — malformed requests (bad JSON, unknown cmd,
//     unregistered graph, out-of-range spec fields) get {"ok":false}
//     responses and never kill the session: the same connection keeps
//     answering afterwards, over the real TCP layer too;
//   * parse robustness — the errno/ERANGE regression for read_double: a
//     report whose max_stretch is spelled 1e999 (strtod clamps to HUGE_VAL
//     and signals only through errno) must be rejected, not round-tripped
//     as infinity. Plus the parse -> append_json identity on a checked-in
//     baseline, which the submit client's report extraction rides on.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/builders.hpp"
#include "orchestrate/posix_io.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "sim/sweep_json.hpp"
#include "synth/fat_tree.hpp"

namespace pofl {
namespace {

std::string baseline_path(const std::string& name) {
  return std::string(POFL_BASELINE_DIR) + "/" + name;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// The golden baseline body: the recorded file minus its trailing newline —
/// exactly the bytes the daemon's "report" field must carry.
std::string baseline_body(const std::string& name) {
  std::string golden;
  EXPECT_TRUE(read_file(baseline_path(name), golden)) << "missing baseline " << name;
  if (!golden.empty() && golden.back() == '\n') golden.pop_back();
  return golden;
}

/// Parses a response envelope and extracts (ok, cached, body-bytes) where
/// the body is re-serialized through append_json — the same extraction the
/// submit client performs, so this asserts the byte-round-trip too.
struct Envelope {
  bool ok = false;
  bool cached = false;
  std::string body;
  std::string error;
};

Envelope unpack(const std::string& response, const std::string& body_key) {
  Envelope e;
  JsonValue value;
  if (!parse_json(response, value) || value.kind != JsonValue::Kind::kObject) return e;
  const JsonValue* ok = value.find("ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) return e;
  e.ok = ok->boolean;
  if (!e.ok) {
    if (const JsonValue* err = value.find("error");
        err != nullptr && err->kind == JsonValue::Kind::kString) {
      e.error = err->text;
    }
    return e;
  }
  if (const JsonValue* cached = value.find("cached");
      cached != nullptr && cached->kind == JsonValue::Kind::kBool) {
    e.cached = cached->boolean;
  }
  if (const JsonValue* body = value.find(body_key); body != nullptr) {
    JsonWriter w;
    append_json(w, *body);
    e.body = w.str();
  }
  return e;
}

constexpr char kK33Sweep[] =
    R"({"cmd":"sweep","graph":"k33","mode":"exhaustive","k":9,"model":"dest","stretch":false})";

ServeOptions k33_opts(int cache_capacity = 64) {
  ServeOptions opts;
  opts.cache_capacity = cache_capacity;
  return opts;
}

void register_k33(SweepServer& server) {
  std::string error;
  ASSERT_TRUE(server.register_graph("k33", make_complete_bipartite(3, 3), error)) << error;
}

// ---- byte parity -----------------------------------------------------------

TEST(ServeSweep, MatchesGoldenBaselineAndCachesRepeat) {
  SweepServer server(k33_opts());
  register_k33(server);
  const std::string golden = baseline_body("sweep_k33_exhaustive.json");

  const Envelope first = unpack(server.handle_request(kK33Sweep), "report");
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cached);
  EXPECT_EQ(first.body, golden)
      << "daemon sweep diverged from the checked-in engine baseline";

  const Envelope second = unpack(server.handle_request(kK33Sweep), "report");
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cached) << "repeat of an identical spec must hit the cache";
  EXPECT_EQ(second.body, golden) << "cached bytes differ from the uncached run";

  const ResultCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(ServeSweep, ConcurrentClientsAreBitIdentical) {
  SweepServer server(k33_opts());
  register_k33(server);
  const std::string golden = baseline_body("sweep_k33_exhaustive.json");

  // Cold start: every thread fires the same query with no warm-up, so
  // several may race the first computation — all must serialize identically.
  constexpr int kThreads = 8;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back(
        [&server, &responses, i] { responses[static_cast<size_t>(i)] = server.handle_request(kK33Sweep); });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kThreads; ++i) {
    const Envelope e = unpack(responses[static_cast<size_t>(i)], "report");
    ASSERT_TRUE(e.ok) << e.error;
    EXPECT_EQ(e.body, golden) << "client " << i << " saw different report bytes";
  }
}

TEST(ServeSweep, ExplicitPairListMatchesFatTreeBaseline) {
  // The wide-mask baseline: |F| <= 2 on the 108-link fat-tree, six probe
  // pairs — exercises the request's "pairs" field and multi-word masks.
  ServeOptions opts;
  SweepServer server(opts);
  std::string error;
  ASSERT_TRUE(server.register_graph("ft6", make_fat_tree(6), error)) << error;
  const std::string request =
      R"({"cmd":"sweep","graph":"ft6","mode":"exhaustive","k":2,"model":"dest",)"
      R"("stretch":false,"pairs":[[0,44],[9,30],[14,40],[20,10],[35,5],[44,0]]})";
  const Envelope e = unpack(server.handle_request(request), "report");
  ASSERT_TRUE(e.ok) << e.error;
  EXPECT_EQ(e.body, baseline_body("sweep_fattree_exhaustive.json"));
}

TEST(ServeSweep, ShardedResponsesMergeToTheUnshardedReport) {
  SweepServer server(k33_opts());
  register_k33(server);
  const std::string golden = baseline_body("sweep_k33_exhaustive.json");
  SweepReport merged;
  for (int i = 0; i < 3; ++i) {
    const std::string request =
        R"({"cmd":"sweep","graph":"k33","mode":"exhaustive","k":9,"model":"dest",)"
        R"("stretch":false,"shard":[)" +
        std::to_string(i) + R"(,3]})";
    const Envelope e = unpack(server.handle_request(request), "report");
    ASSERT_TRUE(e.ok) << e.error;
    ShardInfo info;
    std::string parse_error;
    const auto report = report_from_json(e.body, &info, &parse_error);
    ASSERT_TRUE(report.has_value()) << parse_error;
    EXPECT_TRUE(info.present);
    EXPECT_EQ(info.index, i);
    EXPECT_EQ(info.count, 3);
    merged.merge(*report);
  }
  EXPECT_EQ(to_json(merged), golden)
      << "daemon shard responses do not merge to the unsharded baseline";
}

// ---- cache discipline ------------------------------------------------------

TEST(ServeCache, EvictsLeastRecentlyUsedAtCapacity) {
  SweepServer server(k33_opts(/*cache_capacity=*/2));
  register_k33(server);
  const auto sweep_with_seed = [&](int seed) {
    const std::string request =
        R"({"cmd":"sweep","graph":"k33","mode":"iid","p":0.1,"trials":2,"seed":)" +
        std::to_string(seed) + "}";
    return unpack(server.handle_request(request), "report");
  };

  ASSERT_TRUE(sweep_with_seed(1).ok);  // insert A        cache: [A]
  ASSERT_TRUE(sweep_with_seed(2).ok);  // insert B        cache: [B A]
  ASSERT_TRUE(sweep_with_seed(3).ok);  // insert C -> evict A   cache: [C B]
  ResultCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);

  EXPECT_FALSE(sweep_with_seed(1).cached) << "evicted entry must miss";
  EXPECT_TRUE(sweep_with_seed(3).cached) << "recent entry must survive the eviction";
  stats = server.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.evictions, 2);  // re-inserting A evicted B
}

TEST(ServeCache, GraphHashIsContentAddressed) {
  // Two registrations with identical structure share cache entries; a
  // different structure cannot.
  const std::string h1 = graph_content_hash(make_complete_bipartite(3, 3));
  const std::string h2 = graph_content_hash(make_complete_bipartite(3, 3));
  const std::string h3 = graph_content_hash(make_complete(5));
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_EQ(h1.size(), 16u);
}

// ---- error containment -----------------------------------------------------

TEST(ServeErrors, MalformedRequestsGetJsonErrorsAndSessionSurvives) {
  SweepServer server(k33_opts());
  register_k33(server);
  const std::vector<std::string> bad = {
      "this is not json",
      "{\"no_cmd\":1}",
      "{\"cmd\":\"frobnicate\"}",
      R"({"cmd":"sweep","graph":"nope","mode":"iid","p":0.1,"trials":2})",
      R"({"cmd":"sweep","graph":"k33","mode":"iid","p":1.5,"trials":2})",
      R"({"cmd":"sweep","graph":"k33","mode":"iid","p":0.1,"trials":0})",
      R"({"cmd":"sweep","graph":"k33","mode":"exhaustive"})",
      R"({"cmd":"sweep","graph":"k33","mode":"iid","p":0.1,"trials":2,"shard":[2,2]})",
      R"({"cmd":"sweep","graph":"k33","mode":"iid","p":0.1,"trials":2,"pairs":[[0,0]]})",
      R"({"cmd":"min-defeat","graph":"k33","source":0,"destination":99})",
  };
  for (const std::string& request : bad) {
    const Envelope e = unpack(server.handle_request(request), "report");
    EXPECT_FALSE(e.ok) << "accepted: " << request;
    EXPECT_FALSE(e.error.empty()) << "no error text for: " << request;
  }
  // The session keeps answering after every rejection.
  EXPECT_EQ(server.handle_request("{\"cmd\":\"ping\"}"), "{\"ok\":true,\"pong\":true}");
}

// ---- the TCP layer ---------------------------------------------------------

int connect_loopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

std::string roundtrip(int fd, const std::string& request) {
  const std::string out = request + "\n";
  EXPECT_TRUE(write_all(fd, out.data(), out.size()));
  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = read_eintr(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  const auto newline = response.find('\n');
  EXPECT_NE(newline, std::string::npos) << "connection closed before a response";
  if (newline != std::string::npos) response.resize(newline);
  return response;
}

TEST(ServeSocket, ConcurrentTcpClientsShutdownCleanly) {
  SweepServer server(k33_opts());
  register_k33(server);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  const int port = server.port();
  ASSERT_GT(port, 0);
  std::thread daemon([&server] { server.run(); });

  const std::string golden = baseline_body("sweep_k33_exhaustive.json");
  constexpr int kClients = 4;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([port, &responses, i] {
      const int fd = connect_loopback(port);
      responses[static_cast<size_t>(i)] = roundtrip(fd, kK33Sweep);
      close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    const Envelope e = unpack(responses[static_cast<size_t>(i)], "report");
    ASSERT_TRUE(e.ok) << e.error;
    EXPECT_EQ(e.body, golden) << "TCP client " << i << " saw different report bytes";
  }

  // One session: garbage, then a live request — the error must not drop the
  // connection (satellite: connection survives malformed input).
  const int fd = connect_loopback(port);
  const Envelope bad = unpack(roundtrip(fd, "][ definitely not json"), "report");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(roundtrip(fd, "{\"cmd\":\"ping\"}"), "{\"ok\":true,\"pong\":true}");
  // Shutdown over the same connection: response first, then the daemon
  // drains and run() returns.
  EXPECT_EQ(roundtrip(fd, "{\"cmd\":\"shutdown\"}"), "{\"ok\":true,\"stopping\":true}");
  close(fd);
  daemon.join();
  EXPECT_TRUE(server.stop_requested());
}

// ---- transports ------------------------------------------------------------

TEST(ServeTransport, ParsesHostListsAndQuotes) {
  std::vector<HostSpec> hosts;
  ASSERT_TRUE(parse_host_list("local,ssh:worker@node1,local", hosts));
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_FALSE(hosts[0].ssh);
  EXPECT_TRUE(hosts[1].ssh);
  EXPECT_EQ(hosts[1].host, "worker@node1");
  EXPECT_EQ(to_string(hosts[1]), "ssh:worker@node1");
  EXPECT_FALSE(parse_host_list("", hosts));
  EXPECT_FALSE(parse_host_list("local,,local", hosts));
  EXPECT_FALSE(parse_host_list("telnet:old", hosts));
  EXPECT_FALSE(parse_host_list("ssh:", hosts));

  EXPECT_EQ(shell_quote("plain"), "'plain'");
  EXPECT_EQ(shell_quote("has space"), "'has space'");
  EXPECT_EQ(shell_quote("don't"), "'don'\\''t'");
}

// ---- parse robustness (the read_double ERANGE regression) ------------------

TEST(ServeJson, ReadDoubleRejectsErangeOverflow) {
  // 1e999 overflows double: strtod clamps to HUGE_VAL and signals only via
  // errno, which the old read_double never checked — the report parsed
  // "successfully" with max_stretch = inf and could never round-trip.
  JsonValue obj;
  ASSERT_TRUE(parse_json(R"({"big":1e999,"small":1e-999,"fine":1.5})", obj));
  double out = 0.0;
  EXPECT_FALSE(json_read_double(obj, "big", out)) << "overflow must be rejected";
  EXPECT_TRUE(json_read_double(obj, "fine", out));
  EXPECT_EQ(out, 1.5);

  // End to end: a recorded report whose max_stretch is torn into 1e999 must
  // fail to parse with a diagnosis, not produce an infinite report.
  std::string golden;
  ASSERT_TRUE(read_file(baseline_path("sweep_k33_exhaustive.json"), golden));
  const auto pos = golden.find("\"max_stretch\":");
  ASSERT_NE(pos, std::string::npos);
  const auto value_start = pos + std::string("\"max_stretch\":").size();
  const auto value_end = golden.find_first_of(",}", value_start);
  const std::string torn = golden.substr(0, value_start) + "1e999" + golden.substr(value_end);
  std::string parse_error;
  EXPECT_FALSE(report_from_json(torn, nullptr, &parse_error).has_value());
  EXPECT_NE(parse_error.find("max_stretch"), std::string::npos)
      << "diagnosis must name the offending field, got: " << parse_error;
}

TEST(ServeJson, ParseAppendRoundTripsBaselineBytes) {
  // The identity the submit client's --json/--check extraction rides on:
  // parse_json + append_json reproduces the writer's bytes exactly (raw
  // number spellings survive).
  std::string golden;
  ASSERT_TRUE(read_file(baseline_path("cli_zoo_procs.json"), golden));
  if (!golden.empty() && golden.back() == '\n') golden.pop_back();
  JsonValue value;
  ASSERT_TRUE(parse_json(golden, value));
  JsonWriter w;
  append_json(w, value);
  EXPECT_EQ(w.str(), golden);
}

}  // namespace
}  // namespace pofl
