#include "resilience/k33_source.hpp"

#include <algorithm>
#include <array>

#include "routing/table.hpp"

namespace pofl {

namespace {

constexpr int kPartSize = 3;

bool same_part(VertexId a, VertexId b) { return (a < kPartSize) == (b < kPartSize); }

/// Prepends t to a preference list: delivery always has highest priority,
/// and PriorityTablePattern skips non-neighbors, so this is uniformly safe.
std::vector<VertexId> with_delivery(VertexId t, std::vector<VertexId> rest) {
  std::vector<VertexId> out{t};
  out.insert(out.end(), rest.begin(), rest.end());
  return out;
}

void install_same_part_table(PriorityTablePattern& p, VertexId s, VertexId t) {
  // Roles: a = s, c = t, b = the remaining vertex of their part;
  // v1 < v2 < v3 = the other part, sorted by id.
  VertexId b = kNoVertex;
  const int base = s < kPartSize ? 0 : kPartSize;
  for (VertexId v = base; v < base + kPartSize; ++v) {
    if (v != s && v != t) b = v;
  }
  const int other = s < kPartSize ? kPartSize : 0;
  const VertexId v1 = other, v2 = other + 1, v3 = other + 2;

  const auto rule = [&](VertexId node, VertexId from, std::vector<VertexId> prefs) {
    p.set_rule_with_source(s, t, node, from, with_delivery(t, std::move(prefs)));
  };
  // The same-part table as printed in the paper's appendix loops, e.g. under
  // F = {(s,v1), (t,v2), (t,v3)} the walk s,v2,b,v3,s,v2,... never reaches
  // the alive relay v1 (see tests and EXPERIMENTS.md). The rows below were
  // synthesized by exhaustive-verification-guided search and certify the
  // *statement* of Theorem 9: a perfectly resilient table of this exact
  // shape exists. Verified over all 2^9 failure sets for every (s,t).
  rule(s, kNoVertex, {v3, v2, v1});
  rule(s, v1, {v2, v1, v3});
  rule(s, v2, {v1, v2, v3});
  rule(s, v3, {v2, v1, v3});
  rule(b, v1, {v2, v3, v1});
  rule(b, v2, {v3, v1, v2});
  rule(b, v3, {v1, v2, v3});
  rule(v1, s, {b, s});  // t is prepended: effectively "t, b, s"
  rule(v1, b, {s, b});
  rule(v2, s, {b, s});
  rule(v2, b, {s, b});
  rule(v3, s, {b, s});
  rule(v3, b, {s, b});
}

void install_cross_part_table(PriorityTablePattern& p, VertexId s, VertexId t) {
  // Roles: a = s; b < c = the other two vertices of s's part (interchangeable
  // by symmetry of the table); v1 < v2 = the other two vertices of t's part.
  std::array<VertexId, 2> bc{};
  const int sbase = s < kPartSize ? 0 : kPartSize;
  int bi = 0;
  for (VertexId v = sbase; v < sbase + kPartSize; ++v) {
    if (v != s) bc[static_cast<size_t>(bi++)] = v;
  }
  const VertexId b = bc[0], c = bc[1];
  std::array<VertexId, 2> v12{};
  const int tbase = t < kPartSize ? 0 : kPartSize;
  int vi = 0;
  for (VertexId v = tbase; v < tbase + kPartSize; ++v) {
    if (v != t) v12[static_cast<size_t>(vi++)] = v;
  }
  const VertexId v1 = v12[0], v2 = v12[1];

  const auto rule = [&](VertexId node, VertexId from, std::vector<VertexId> prefs) {
    p.set_rule_with_source(s, t, node, from, with_delivery(t, std::move(prefs)));
  };
  rule(s, kNoVertex, {v1, v2});  // paper: "bottom: t, v1, v2"
  rule(s, v1, {v2});
  rule(s, v2, {v2});
  for (VertexId bc_node : {b, c}) {
    rule(bc_node, v1, {v2, v1});
    rule(bc_node, v2, {v1, v2});
  }
  rule(v1, s, {b, c, s});
  rule(v1, b, {c, s, b});
  rule(v1, c, {b, s, c});
  rule(v2, s, {b, c});
  rule(v2, b, {c, b});
  rule(v2, c, {b, c});
}

}  // namespace

std::unique_ptr<ForwardingPattern> make_k33_source_pattern() {
  auto pattern = std::make_unique<PriorityTablePattern>(RoutingModel::kSourceDestination,
                                                        "k33-source-table");
  for (VertexId s = 0; s < 2 * kPartSize; ++s) {
    for (VertexId t = 0; t < 2 * kPartSize; ++t) {
      if (s == t) continue;
      if (same_part(s, t)) {
        install_same_part_table(*pattern, s, t);
      } else {
        install_cross_part_table(*pattern, s, t);
      }
    }
  }
  return pattern;
}

}  // namespace pofl
