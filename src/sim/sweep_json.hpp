#pragma once

// Machine-readable sweep results. A tiny dependency-free JSON writer plus
// serializers for SweepStats / SweepReport, so the CLI and the bench drivers
// can emit BENCH_*.json trajectories instead of being scraped from stdout.
//
// JSON shape (stable; documented in the README):
//   SweepStats  -> {"total":..,"promise_broken":..,...,"delivery_rate":..}
//   SweepReport -> {"totals":{...},"per_pair":[{"source":..,
//                   "destination":..|null,"stats":{...}},...]}
// Touring rows serialize their kNoVertex destination as null.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.hpp"

namespace pofl {

/// Shared command-line convention for the bench drivers:
/// `<bench> [positional...] [--json <path>] [--threads <n>]`. One parser
/// instead of seven hand-rolled copies, with one behavior: a flag without
/// its value (or an unknown --flag, or a non-numeric thread count) is an
/// error (reported on stderr by the caller), never a positional. Drivers
/// without any threaded sweep reject `--threads` via `threads_set` so the
/// flag never silently does nothing.
struct BenchArgs {
  std::string json_path;                 // empty when --json absent
  int num_threads = 0;                   // --threads; 0 = engine default
  bool threads_set = false;              // --threads appeared on the command line
  std::vector<std::string> positional;   // everything that is not a flag
  bool error = false;                    // missing flag value or unknown --flag
};
[[nodiscard]] BenchArgs parse_bench_args(int argc, char** argv);

/// Append-style compact JSON writer. Keys and values are emitted in call
/// order; commas and nesting are handled by the writer. No pretty-printing —
/// consumers are scripts, not eyes.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key for the next value inside an object.
  JsonWriter& key(const std::string& k);
  JsonWriter& value(int64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::string pending_key_;
  bool has_pending_key_ = false;
  std::vector<bool> needs_comma_;
};

[[nodiscard]] std::string json_escape(const std::string& s);

/// Serializes the stats as one JSON object (counters plus derived rates).
void append_json(JsonWriter& w, const SweepStats& stats);

/// Serializes totals + per-pair rows.
void append_json(JsonWriter& w, const SweepReport& report);

[[nodiscard]] std::string to_json(const SweepStats& stats);
[[nodiscard]] std::string to_json(const SweepReport& report);

/// Writes `body` to `path`; returns false (and prints to stderr) on failure.
bool write_json_file(const std::string& path, const std::string& body);

}  // namespace pofl
