#include "graph/planarity.hpp"

#include <gtest/gtest.h>

#include <random>

#include "graph/builders.hpp"
#include "graph/minors.hpp"

namespace pofl {
namespace {

TEST(Planarity, SmallGraphsArePlanar) {
  EXPECT_TRUE(is_planar(make_complete(4)));
  EXPECT_TRUE(is_planar(make_complete_minus(5, 1)));
  EXPECT_TRUE(is_planar(make_path(10)));
  EXPECT_TRUE(is_planar(make_cycle(10)));
  EXPECT_TRUE(is_planar(make_grid(5, 5)));
  EXPECT_TRUE(is_planar(make_wheel(8)));
}

TEST(Planarity, KuratowskiGraphsAreNot) {
  EXPECT_FALSE(is_planar(make_complete(5)));
  EXPECT_FALSE(is_planar(make_complete_bipartite(3, 3)));
  EXPECT_FALSE(is_planar(make_complete(6)));
  EXPECT_FALSE(is_planar(make_complete(7)));
  EXPECT_FALSE(is_planar(make_complete_bipartite(4, 4)));
  EXPECT_FALSE(is_planar(make_complete_bipartite(3, 5)));
}

TEST(Planarity, MinusOneLinkVariantsArePlanar) {
  // The paper (Thm 10/11) stresses that K5^-1 and K3,3^-1 are planar.
  EXPECT_TRUE(is_planar(make_complete_minus(5, 1)));
  EXPECT_TRUE(is_planar(make_complete_bipartite_minus(3, 3, 1)));
  // K7^-1 and K4,4^-1 stay non-planar.
  EXPECT_FALSE(is_planar(make_complete_minus(7, 1)));
  EXPECT_FALSE(is_planar(make_complete_bipartite_minus(4, 4, 1)));
}

TEST(Planarity, Subdivisions) {
  // A subdivision of K5 is still non-planar: subdivide every edge once.
  const Graph k5 = make_complete(5);
  Graph sub(5 + k5.num_edges());
  for (EdgeId e = 0; e < k5.num_edges(); ++e) {
    const VertexId mid = 5 + e;
    sub.add_edge(k5.edge(e).u, mid);
    sub.add_edge(mid, k5.edge(e).v);
  }
  EXPECT_FALSE(is_planar(sub));
  // Subdividing a planar graph keeps it planar.
  const Graph k4 = make_complete(4);
  Graph sub4(4 + k4.num_edges());
  for (EdgeId e = 0; e < k4.num_edges(); ++e) {
    const VertexId mid = 4 + e;
    sub4.add_edge(k4.edge(e).u, mid);
    sub4.add_edge(mid, k4.edge(e).v);
  }
  EXPECT_TRUE(is_planar(sub4));
}

TEST(Planarity, DisconnectedGraphs) {
  // Two disjoint K4's: planar. K5 plus isolated vertices: not.
  Graph two_k4(8);
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) two_k4.add_edge(base + i, base + j);
    }
  }
  EXPECT_TRUE(is_planar(two_k4));

  Graph k5_iso(8);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) k5_iso.add_edge(i, j);
  }
  EXPECT_FALSE(is_planar(k5_iso));
}

TEST(Planarity, RandomPlanarBuildersStayPlanar) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 40);
    const Graph g = make_random_planar(n, n + static_cast<int>(rng() % (2 * n)), rng());
    EXPECT_TRUE(is_planar(g)) << g.to_string();
  }
}

TEST(Planarity, RandomOuterplanarBuildersStayOuterplanar) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 30);
    const Graph g = make_random_outerplanar(n, n - 1 + static_cast<int>(rng() % n), rng());
    EXPECT_TRUE(is_outerplanar(g)) << g.to_string();
    EXPECT_TRUE(is_planar(g));
  }
}

TEST(Planarity, AgreesWithKuratowskiMinorSearchOnRandomGraphs) {
  // Cross-validation: planar iff no K5 minor and no K3,3 minor (Wagner).
  // Exact minor search keeps hosts small.
  std::mt19937_64 rng(17);
  const Graph k5 = make_complete(5);
  const Graph k33 = make_complete_bipartite(3, 3);
  int nonplanar_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 6);  // 5..10
    const int max_m = n * (n - 1) / 2;
    const int m = std::min(max_m, n - 1 + static_cast<int>(rng() % (2 * n)));
    const Graph g = make_random_connected(n, m, rng());
    const bool planar = is_planar(g);
    const bool wagner = !has_minor(g, k5) && !has_minor(g, k33);
    EXPECT_EQ(planar, wagner) << g.to_string();
    nonplanar_seen += planar ? 0 : 1;
  }
  EXPECT_GT(nonplanar_seen, 3) << "test corpus never exercised the non-planar side";
}

TEST(Outerplanarity, ClassicExamples) {
  EXPECT_TRUE(is_outerplanar(make_cycle(8)));
  EXPECT_TRUE(is_outerplanar(make_path(8)));
  EXPECT_TRUE(is_outerplanar(make_star(8)));
  EXPECT_TRUE(is_outerplanar(make_complete(3)));
  EXPECT_FALSE(is_outerplanar(make_complete(4)));
  EXPECT_FALSE(is_outerplanar(make_complete_bipartite(2, 3)));
  EXPECT_FALSE(is_outerplanar(make_wheel(5)));
  EXPECT_FALSE(is_outerplanar(make_grid(3, 3)));
  EXPECT_TRUE(is_outerplanar(make_grid(2, 2)));
  EXPECT_TRUE(is_outerplanar(make_ladder(2)));
}

TEST(Outerplanarity, MaximalOuterplanarFamilies) {
  for (int n : {5, 9, 14}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      EXPECT_TRUE(is_outerplanar(make_random_maximal_outerplanar(n, seed)));
    }
  }
}

TEST(Outerplanarity, AgreesWithForbiddenMinors) {
  // Chartrand-Harary: outerplanar iff no K4 minor and no K2,3 minor.
  std::mt19937_64 rng(23);
  const Graph k4 = make_complete(4);
  const Graph k23 = make_complete_bipartite(2, 3);
  int outerplanar_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 6);
    const int max_m = n * (n - 1) / 2;
    const int m = std::min(max_m, n - 1 + static_cast<int>(rng() % n));
    const Graph g = make_random_connected(n, m, rng());
    const bool outer = is_outerplanar(g);
    const bool forbidden_free = !has_minor(g, k4) && !has_minor(g, k23);
    EXPECT_EQ(outer, forbidden_free) << g.to_string();
    outerplanar_seen += outer ? 1 : 0;
  }
  EXPECT_GT(outerplanar_seen, 3);
}

}  // namespace
}  // namespace pofl
