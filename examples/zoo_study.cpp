// Classifies networks the way the paper's §VIII case study does. Without
// arguments a few classic topologies plus a sample of the synthetic zoo are
// classified; pass a directory of .graphml files (e.g. a copy of the real
// Internet Topology Zoo) to classify those instead.
//
//   ./examples/zoo_study [graphml-directory]

#include <cstdio>

#include "classify/classifier.hpp"
#include "classify/zoo.hpp"
#include "graph/builders.hpp"

namespace {

void print_row(const std::string& name, const pofl::Graph& g, const pofl::Classification& c) {
  std::printf("%-28s n=%4d m=%4d %-5s %-5s | tour=%-10s dest=%-10s sd=%-10s cor5=%d/%d\n",
              name.c_str(), g.num_vertices(), g.num_edges(), c.planar ? "plan" : "nonpl",
              c.outerplanar ? "outer" : "-", to_string(c.touring), to_string(c.destination),
              to_string(c.source_destination), c.cor5_destinations, g.num_vertices());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pofl;

  std::vector<NamedGraph> nets;
  if (argc > 1) {
    nets = load_zoo_directory(argv[1]);
    std::printf("Loaded %zu GraphML networks from %s\n\n", nets.size(), argv[1]);
  }
  if (nets.empty()) {
    nets.push_back({"ring-16", make_cycle(16)});
    nets.push_back({"tree-20", make_random_tree(20, 5)});
    nets.push_back({"wheel-8", make_wheel(8)});
    nets.push_back({"grid-4x4", make_grid(4, 4)});
    nets.push_back({"K5", make_complete(5)});
    nets.push_back({"K5-minus-1", make_complete_minus(5, 1)});
    nets.push_back({"K5-minus-2", make_complete_minus(5, 2)});
    nets.push_back({"K7", make_complete(7)});
    nets.push_back({"K3,3", make_complete_bipartite(3, 3)});
    nets.push_back({"waxman-30", make_waxman(30, 0.6, 0.2, 11)});
    auto zoo = make_synthetic_zoo();
    for (size_t i = 0; i < zoo.size(); i += 37) nets.push_back(std::move(zoo[i]));
  }

  for (const auto& net : nets) {
    const Classification c = classify_topology(net.graph);
    print_row(net.name, net.graph, c);
  }
  return 0;
}
