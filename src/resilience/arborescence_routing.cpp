#include "resilience/arborescence_routing.hpp"

#include <algorithm>

namespace pofl {

std::unique_ptr<ArborescenceRoutingPattern> ArborescenceRoutingPattern::create(
    const Graph& g, std::vector<std::vector<Arborescence>> trees_per_destination) {
  for (const auto& trees : trees_per_destination) {
    if (!trees.empty() && !validate_arborescences(g, trees)) return nullptr;
  }
  return std::unique_ptr<ArborescenceRoutingPattern>(
      new ArborescenceRoutingPattern(std::move(trees_per_destination)));
}

std::unique_ptr<ArborescenceRoutingPattern> ArborescenceRoutingPattern::build(const Graph& g,
                                                                              int k,
                                                                              uint64_t seed) {
  std::vector<std::vector<Arborescence>> per_destination(
      static_cast<size_t>(g.num_vertices()));
  for (VertexId t = 0; t < g.num_vertices(); ++t) {
    auto trees = build_arborescences(g, t, k, seed + static_cast<uint64_t>(t));
    if (!trees.has_value()) return nullptr;
    per_destination[static_cast<size_t>(t)] = std::move(*trees);
  }
  return create(g, std::move(per_destination));
}

std::optional<EdgeId> ArborescenceRoutingPattern::forward(const Graph& g, VertexId at,
                                                          EdgeId inport,
                                                          const IdSet& local_failures,
                                                          const Header& header) const {
  const VertexId t = header.destination;
  if (t == kNoVertex || t >= static_cast<VertexId>(trees_.size())) return std::nullopt;
  const auto& trees = trees_[static_cast<size_t>(t)];
  if (trees.empty() || at == t) return std::nullopt;
  const int k = static_cast<int>(trees.size());

  // Which tree is the packet on? The in-arc (from -> at) belongs to at most
  // one arborescence: `from`'s parent arc in that tree points at `at`.
  int current = 0;
  if (inport != kNoEdge) {
    const VertexId from = g.other_endpoint(inport, at);
    for (int i = 0; i < k; ++i) {
      if (trees[static_cast<size_t>(i)].parent_edge[static_cast<size_t>(from)] == inport &&
          trees[static_cast<size_t>(i)].parent[static_cast<size_t>(from)] == at) {
        current = i;
        break;
      }
    }
  }
  // Ride the current tree; on failure switch circularly to the next tree
  // whose parent arc here is alive.
  for (int step = 0; step < k; ++step) {
    const int i = (current + step) % k;
    const EdgeId up = trees[static_cast<size_t>(i)].parent_edge[static_cast<size_t>(at)];
    if (up != kNoEdge && !local_failures.contains(up)) return up;
  }
  return std::nullopt;  // all parent arcs dead
}

}  // namespace pofl
