#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "graph/connectivity.hpp"
#include "graph/incremental_connectivity.hpp"
#include "routing/simulator.hpp"

namespace pofl {

void SweepStats::merge(const SweepStats& other) {
  total += other.total;
  promise_broken += other.promise_broken;
  delivered += other.delivered;
  looped += other.looped;
  dropped += other.dropped;
  invalid += other.invalid;
  failures_seen += other.failures_seen;
  hops_delivered += other.hops_delivered;
  stretch_samples += other.stretch_samples;
  stretch_sum_q32 = saturating_add(stretch_sum_q32, other.stretch_sum_q32);
  max_stretch = std::max(max_stretch, other.max_stretch);
  oracle_hits += other.oracle_hits;
  oracle_misses += other.oracle_misses;
  oracle_evictions += other.oracle_evictions;
}

void SweepReport::merge(const SweepReport& other) {
  totals.merge(other.totals);
  // Union-merge the sorted row lists; equal (source, destination) keys
  // merge their stats. Touring rows (destination == kNoVertex == -1) sort
  // first, matching run_report's std::map ordering.
  std::vector<PairStats> merged;
  merged.reserve(per_pair.size() + other.per_pair.size());
  size_t a = 0;
  size_t b = 0;
  const auto key = [](const PairStats& row) {
    return std::make_pair(row.source, row.destination);
  };
  while (a < per_pair.size() || b < other.per_pair.size()) {
    if (b == other.per_pair.size() ||
        (a < per_pair.size() && key(per_pair[a]) < key(other.per_pair[b]))) {
      merged.push_back(per_pair[a++]);
    } else if (a == per_pair.size() || key(other.per_pair[b]) < key(per_pair[a])) {
      merged.push_back(other.per_pair[b++]);
    } else {
      merged.push_back(per_pair[a++]);
      merged.back().stats.merge(other.per_pair[b++].stats);
    }
  }
  per_pair = std::move(merged);
}

namespace {

/// Worker-local memo for the default connectivity promise. Scenario streams
/// are failure-set-major (every pair is asked under F before the next F
/// appears), so consecutive scenarios usually share their failure set, and
/// consecutive *failure sets* usually differ only in a low-edge-id suffix
/// (Gosper enumeration). The memo starts lazy — the first query per F is an
/// early-exit BFS — and switches to the rollback union-find exactly while
/// the previous F proved to repeat: a failure-set-major stream then pays an
/// O(1)-amortized incremental move per Gosper step (in place of the full
/// component labeling this memo used to rebuild per F), while a pair-major
/// stream (where a repeat is a coincidence, e.g. two identical Monte Carlo
/// draws) falls back to the cheaper single-query BFS on the very next F.
/// All methods give the same boolean answer, so every sweep counter is
/// identical whichever path runs; the structure is reused across the
/// worker's whole run, so steady state stays allocation-free.
struct PromiseMemo {
  IdSet failures;
  bool have_failures = false;
  bool inc_synced = false;        // inc reflects `failures`
  bool current_repeated = false;  // the memoized F received a second query
  std::unique_ptr<IncrementalConnectivity> inc;  // lazy: Monte Carlo never builds it
};

/// Points memo.inc at G \ failures (building it on first use).
void memo_sync_incremental(const Graph& g, const IdSet& failures, PromiseMemo& memo) {
  if (memo.inc == nullptr) memo.inc = std::make_unique<IncrementalConnectivity>(g);
  memo.inc->move_to(failures);
  memo.inc_synced = true;
}

bool promise_connected(const SimContext& ctx, const IdSet& failures, VertexId source,
                       VertexId destination, RoutingWorkspace& ws, PromiseMemo& memo) {
  if (source == destination) return true;
  if (memo.have_failures && memo.failures == failures) {
    memo.current_repeated = true;
    if (!memo.inc_synced) memo_sync_incremental(ctx.graph(), failures, memo);
    return memo.inc->connected(source, destination);
  }
  const bool eager = memo.current_repeated;
  memo.failures = failures;
  memo.have_failures = true;
  memo.inc_synced = false;
  memo.current_repeated = false;
  if (eager) {
    memo_sync_incremental(ctx.graph(), failures, memo);
    return memo.inc->connected(source, destination);
  }
  return connected_fast(ctx, failures, source, destination, ws);
}

/// Tallies one scenario into stats and reports whether it is a resilience
/// violation (promise held, but not delivered / tour incomplete). The
/// failure set is borrowed from the batch's group storage — nothing here
/// copies it. Runs the zero-allocation simulator fast path against the
/// per-run SimContext and the worker's RoutingWorkspace — callers that need
/// a witness walk re-simulate the one scenario they care about.
/// `promise_scratch` is a worker-reused Scenario, materialized only when a
/// custom promise predicate needs the legacy (Graph, Scenario) signature.
bool process_scenario(const SimContext& ctx, const ForwardingPattern& pattern,
                      const IdSet& failures, VertexId source, VertexId destination,
                      const SweepOptions& opts, SweepStats& stats, RoutingWorkspace& ws,
                      PromiseMemo& memo, Scenario& promise_scratch) {
  const Graph& g = ctx.graph();
  ++stats.total;

  const auto custom_promise_holds = [&]() {
    promise_scratch.failures = failures;  // assignment reuses its storage
    promise_scratch.source = source;
    promise_scratch.destination = destination;
    return opts.promise(g, promise_scratch);
  };

  if (destination == kNoVertex) {
    // Touring: the promise holds unconditionally (§VII) unless a custom
    // promise narrows it.
    if (opts.promise && !custom_promise_holds()) {
      ++stats.promise_broken;
      return false;
    }
    stats.failures_seen += failures.count();
    const FastTourResult r = tour_packet_fast(ctx, pattern, failures, source, ws);
    stats.tally_tour(r.success, r.dropped, r.steps_walked);
    return !r.success;
  }

  bool held;
  if (opts.promise) {
    held = custom_promise_holds();
  } else if (opts.oracle != nullptr) {
    held = opts.oracle->connected(source, destination, failures);
  } else {
    held = promise_connected(ctx, failures, source, destination, ws, memo);
  }
  if (!held) {
    ++stats.promise_broken;
    return false;
  }

  stats.failures_seen += failures.count();
  const FastRouteResult r =
      route_packet_fast(ctx, pattern, failures, source, Header{source, destination}, ws);
  stats.tally_route(r.outcome, r.hops);
  if (r.outcome == RoutingOutcome::kDelivered && opts.compute_stretch) {
    // BFS only on delivery: undelivered and promise-broken scenarios never
    // need the distance.
    const auto dist = distance(g, source, destination, failures);
    if (dist.has_value() && *dist >= 1) stats.tally_stretch(r.hops, *dist);
  }
  return r.outcome != RoutingOutcome::kDelivered;
}

/// Packs a (source, destination) pair into one map key; kNoVertex
/// destinations (touring starts) pack like any other value.
uint64_t pair_key(VertexId s, VertexId t) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(s)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(t));
}

/// Worker-reused buffers of the group-parallel consumption path: the routing
/// request the promise filter admits (with per-packet dense group ordinals
/// and per-ordinal borrowed failure sets), per-packet result/target columns
/// (only populated when per-pair rows or stretch need per-packet outcomes),
/// and the group promise's rollback union-find.
struct GroupScratch {
  std::vector<VertexId> src;
  std::vector<VertexId> dst;
  std::vector<int32_t> ord;          // per packet: dense group ordinal
  std::vector<const IdSet*> fsets;   // per ordinal: that group's failure set
  std::vector<SweepStats*> target;   // parallel to src/dst in per-pair mode
  std::vector<FastRouteResult> results;
  std::unique_ptr<IncrementalConnectivity> inc;  // lazy, like PromiseMemo's
};

/// Consumes one whole batch group-parallel: the scenarios are promise-
/// filtered group by group in stream order, then every admitted packet of
/// the batch is routed in a single route_groups_fast call (packets of
/// different groups share lockstep chunks, so small groups still fill the
/// 64-wide machinery). Counter-for-counter identical to process_scenario
/// over the same scenarios: the promise booleans agree (oracle / union-find
/// / BFS all answer exact connectivity, and the oracle is still consulted
/// once per scenario so its hit/miss accounting is unchanged), and the group
/// core's outcomes and hops are bit-identical to route_packet_fast. Touring
/// scenarios inside a batch take the scalar tour core as before.
void process_batch_groups(const SimContext& ctx, const ForwardingPattern& pattern,
                          const ScenarioBatch& batch, int n, const SweepOptions& opts,
                          bool collect_per_pair, SweepStats& local,
                          std::unordered_map<uint64_t, SweepStats>& local_pairs,
                          RoutingWorkspace& ws, PromiseMemo& memo, GroupScratch& scratch) {
  const Graph& g = ctx.graph();
  const bool per_packet = collect_per_pair || opts.compute_stretch;
  // Packing goes through raw pointers into worker-persistent arrays sized to
  // the batch (capacity sticks across batches, so the resizes are free in
  // steady state) — the admission loop runs per scenario and push_back's
  // capacity checks are measurable there.
  const auto un = static_cast<size_t>(n);
  if (scratch.src.size() < un) {
    scratch.src.resize(un);
    scratch.dst.resize(un);
    scratch.ord.resize(un);
    if (per_packet) scratch.target.resize(un);
  } else if (per_packet && scratch.target.size() < un) {
    scratch.target.resize(un);
  }
  scratch.fsets.clear();
  VertexId* const sp = scratch.src.data();
  VertexId* const dp = scratch.dst.data();
  int32_t* const op = scratch.ord.data();
  SweepStats** const tp = per_packet ? scratch.target.data() : nullptr;
  int admitted = 0;

  for (int begin = 0; begin < n;) {
    const int grp = batch.group_of(begin);
    int end = begin + 1;
    while (end < n && batch.group_of(end) == grp) ++end;
    const IdSet& failures = batch.group_failures(grp);
    const int fcount = failures.count();
    const int span = end - begin;

    // Default-promise strategy: the oracle (when attached) answers per
    // scenario, keeping its counters identical to the scalar path; a
    // multi-scenario group moves the rollback union-find once and answers
    // every pair with two finds; a singleton group (each Monte Carlo draw is
    // its own group) keeps the lazy early-exit BFS — same split the scalar
    // PromiseMemo converges to on those streams.
    bool inc_ready = false;
    const auto promise_holds = [&](VertexId s, VertexId t) {
      if (s == t) return true;
      if (opts.oracle != nullptr) return opts.oracle->connected(s, t, failures);
      if (span == 1) return promise_connected(ctx, failures, s, t, ws, memo);
      if (!inc_ready) {
        if (scratch.inc == nullptr) {
          scratch.inc = std::make_unique<IncrementalConnectivity>(g);
        }
        scratch.inc->move_to(failures);
        inc_ready = true;
      }
      return scratch.inc->connected(s, t);
    };

    // Ordinals are per admitting group and dense (assigned on the group's
    // first admitted packet), which is exactly route_groups_fast's contract.
    const int group_first = admitted;
    int32_t ord = -1;
    int toured = 0;
    for (int i = begin; i < end; ++i) {
      const VertexId s = batch.source(i);
      const VertexId t = batch.destination(i);
      if (t == kNoVertex) {
        // Touring: the promise holds unconditionally (§VII). Rare enough in
        // a routing-heavy stream that its tallies stay per scenario — except
        // `total`, which the aggregate path adds group-wide below.
        SweepStats& st = collect_per_pair ? local_pairs[pair_key(s, t)] : local;
        if (collect_per_pair) ++st.total;
        st.failures_seen += fcount;
        const FastTourResult r = tour_packet_fast(ctx, pattern, failures, s, ws);
        st.tally_tour(r.success, r.dropped, r.steps_walked);
        ++toured;
        continue;
      }
      if (!promise_holds(s, t)) {
        if (collect_per_pair) {
          SweepStats& st = local_pairs[pair_key(s, t)];
          ++st.total;
          ++st.promise_broken;
        }
        continue;
      }
      if (ord < 0) {
        scratch.fsets.push_back(&failures);
        ord = static_cast<int32_t>(scratch.fsets.size()) - 1;
      }
      sp[admitted] = s;
      dp[admitted] = t;
      op[admitted] = ord;
      if (per_packet) {
        // Pointers into local_pairs stay valid across later insertions (the
        // map is node-based), so admitted packets' rows resolve up front.
        SweepStats& st = collect_per_pair ? local_pairs[pair_key(s, t)] : local;
        if (collect_per_pair) {
          ++st.total;
          st.failures_seen += fcount;
        }
        tp[admitted] = &st;
      }
      ++admitted;
    }
    const int group_admitted = admitted - group_first;
    if (!collect_per_pair) {
      // Aggregate mode folds the group's per-scenario counters in bulk: the
      // per-pair identities (total = sum of rows, etc.) don't apply here, so
      // one add per group replaces one per scenario.
      local.total += span;
      local.promise_broken += span - toured - group_admitted;
      local.failures_seen += static_cast<int64_t>(fcount) * group_admitted;
    }
    begin = end;
  }
  if (admitted == 0) return;
  if (!per_packet) {
    // Aggregate mode: fold the vectorized popcount tallies straight in.
    const GroupRouteTally t =
        route_groups_fast(ctx, pattern, scratch.fsets.data(), scratch.ord.data(),
                          scratch.src.data(), scratch.dst.data(), admitted, ws, nullptr);
    local.delivered += t.delivered;
    local.looped += t.looped;
    local.dropped += t.dropped;
    local.invalid += t.invalid;
    local.hops_delivered += t.hops_delivered;
    return;
  }
  scratch.results.resize(static_cast<size_t>(admitted));
  (void)route_groups_fast(ctx, pattern, scratch.fsets.data(), scratch.ord.data(),
                          scratch.src.data(), scratch.dst.data(), admitted, ws,
                          scratch.results.data());
  for (int k = 0; k < admitted; ++k) {
    SweepStats& st = *scratch.target[static_cast<size_t>(k)];
    const FastRouteResult& r = scratch.results[static_cast<size_t>(k)];
    st.tally_route(r.outcome, r.hops);
    if (r.outcome == RoutingOutcome::kDelivered && opts.compute_stretch) {
      const int32_t ord = scratch.ord[static_cast<size_t>(k)];
      const IdSet& failures = *scratch.fsets[static_cast<size_t>(ord)];
      const auto dist = distance(g, scratch.src[static_cast<size_t>(k)],
                                 scratch.dst[static_cast<size_t>(k)], failures);
      if (dist.has_value() && *dist >= 1) st.tally_stretch(r.hops, *dist);
    }
  }
}

/// Worker count: the requested number (0 = hardware concurrency), capped at
/// one worker per batch when the source knows its size — spawning 64
/// threads for a 3-batch stratum probe would cost more than the sweep.
int resolve_threads(int requested, const ScenarioSource& source, int batch_size) {
  int threads = requested;
  if (threads <= 0) {
    threads = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  const int64_t hint = source.total_hint();
  if (hint >= 0) {
    const int64_t batches = (hint + batch_size - 1) / batch_size;
    threads = static_cast<int>(std::min<int64_t>(threads, std::max<int64_t>(1, batches)));
  }
  return threads;
}

void run_on_pool(int num_threads, const std::function<void()>& worker) {
  if (num_threads == 1) {
    worker();
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
}

}  // namespace

/// One worker's reusable scratch, pooled on the engine so it survives run()
/// boundaries. What persists usefully is the RoutingWorkspace: its packed
/// decision cache stays warm across repeated sweeps of the same (graph,
/// pattern) — begin_session compares uids and only flushes on a change. The
/// promise memos also persist their storage, but their graph-pointing
/// internals (the union-finds) are dropped at checkout; see checkout_slot.
struct SweepEngine::WorkerSlot {
  RoutingWorkspace ws;
  PromiseMemo memo;
  Scenario promise_scratch;
  GroupScratch scratch;
  std::unordered_map<uint64_t, SweepStats> local_pairs;
  ScenarioBatch batch;
};

SweepEngine::SweepEngine(SweepOptions opts) : opts_(std::move(opts)) {}

SweepEngine::~SweepEngine() = default;

std::unique_ptr<SweepEngine::WorkerSlot> SweepEngine::checkout_slot() const {
  std::unique_ptr<WorkerSlot> slot;
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      slot = std::move(pool_.back());
      pool_.pop_back();
    }
  }
  if (slot == nullptr) slot = std::make_unique<WorkerSlot>();
  // The promise union-finds hold a pointer to the graph they were built
  // from, which this run's graph need not outlive-match even when the uids
  // agree (a structurally identical copy shares the uid but not the
  // address). Dropping them is cheap — they rebuild lazily, at most once per
  // run. Everything else in the slot is either self-revalidating (the
  // decision cache, via uids in begin_session) or plain reusable storage.
  slot->memo.have_failures = false;
  slot->memo.inc_synced = false;
  slot->memo.current_repeated = false;
  slot->memo.inc.reset();
  slot->scratch.inc.reset();
  slot->local_pairs.clear();
  return slot;
}

void SweepEngine::checkin_slot(std::unique_ptr<WorkerSlot> slot) const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(slot));
}

SweepStats SweepEngine::run(const Graph& g, const ForwardingPattern& pattern,
                            ScenarioSource& source) const {
  return run_impl(g, pattern, source, /*collect_per_pair=*/false).totals;
}

SweepReport SweepEngine::run_report(const Graph& g, const ForwardingPattern& pattern,
                                    ScenarioSource& source) const {
  return run_impl(g, pattern, source, /*collect_per_pair=*/true);
}

SweepReport SweepEngine::run_impl(const Graph& g, const ForwardingPattern& pattern,
                                  ScenarioSource& source, bool collect_per_pair) const {
  const int batch_size = std::max(1, opts_.batch_size);
  const int num_threads = resolve_threads(opts_.num_threads, source, batch_size);

  const int64_t oracle_hits_before = opts_.oracle != nullptr ? opts_.oracle->hits() : 0;
  const int64_t oracle_misses_before = opts_.oracle != nullptr ? opts_.oracle->misses() : 0;
  const int64_t oracle_evictions_before = opts_.oracle != nullptr ? opts_.oracle->evictions() : 0;

  // One immutable context per run (per graph), one workspace per worker:
  // steady-state scenarios allocate nothing.
  const SimContext ctx(g);

  SweepReport report;
  std::unordered_map<uint64_t, SweepStats> global_pairs;
  std::mutex source_mutex;
  std::mutex stats_mutex;

  // The group-parallel path handles the default and oracle promises; a
  // custom predicate must see scenarios one at a time, so it keeps the
  // scalar loop (as does group_routing = false, the A/B toggle).
  const bool use_groups = opts_.group_routing && !opts_.promise;

  auto worker = [&]() {
    std::unique_ptr<WorkerSlot> slot_owner = checkout_slot();
    WorkerSlot& slot = *slot_owner;
    SweepStats local;
    for (;;) {
      int n = 0;
      {
        const std::lock_guard<std::mutex> lock(source_mutex);
        n = source.next_batch(batch_size, slot.batch);
      }
      if (n == 0) break;
      if (use_groups) {
        process_batch_groups(ctx, pattern, slot.batch, n, opts_, collect_per_pair, local,
                             slot.local_pairs, slot.ws, slot.memo, slot.scratch);
        continue;
      }
      for (int i = 0; i < n; ++i) {
        SweepStats& target =
            collect_per_pair
                ? slot.local_pairs[pair_key(slot.batch.source(i), slot.batch.destination(i))]
                : local;
        process_scenario(ctx, pattern, slot.batch.failures(i), slot.batch.source(i),
                         slot.batch.destination(i), opts_, target, slot.ws, slot.memo,
                         slot.promise_scratch);
      }
    }
    {
      const std::lock_guard<std::mutex> lock(stats_mutex);
      if (collect_per_pair) {
        // Totals are the merge of the pair rows, so the documented identity
        // totals == sum(per_pair) holds by construction.
        for (auto& [key, stats] : slot.local_pairs) {
          report.totals.merge(stats);
          global_pairs[key].merge(stats);
        }
      } else {
        report.totals.merge(local);
      }
    }
    checkin_slot(std::move(slot_owner));
  };

  run_on_pool(num_threads, worker);

  if (opts_.oracle != nullptr) {
    report.totals.oracle_hits = opts_.oracle->hits() - oracle_hits_before;
    report.totals.oracle_misses = opts_.oracle->misses() - oracle_misses_before;
    report.totals.oracle_evictions = opts_.oracle->evictions() - oracle_evictions_before;
  }

  if (collect_per_pair) {
    std::map<std::pair<VertexId, VertexId>, SweepStats> sorted;
    for (auto& [key, stats] : global_pairs) {
      const auto s = static_cast<VertexId>(static_cast<int32_t>(key >> 32));
      const auto t = static_cast<VertexId>(static_cast<int32_t>(key & 0xffffffffu));
      sorted.emplace(std::make_pair(s, t), stats);
    }
    report.per_pair.reserve(sorted.size());
    for (auto& [pair, stats] : sorted) {
      report.per_pair.push_back(PairStats{pair.first, pair.second, stats});
    }
  }
  return report;
}

std::optional<SweepFinding> SweepEngine::find_first_violation(const Graph& g,
                                                              const ForwardingPattern& pattern,
                                                              ScenarioSource& source) const {
  const int batch_size = std::max(1, opts_.batch_size);
  const int num_threads = resolve_threads(opts_.num_threads, source, batch_size);

  // Deterministic early exit. `produced` is the stream position of the next
  // unproduced scenario; `best` the smallest violating index found so far.
  // Workers keep pulling while produced < best, so every scenario earlier
  // than a candidate is still evaluated; a candidate only survives if no
  // earlier scenario violates. Scenarios at index >= best are skipped — they
  // cannot improve the minimum. The final `best` is therefore the global
  // minimum violating index, independent of thread count and timing.
  constexpr int64_t kNoViolation = std::numeric_limits<int64_t>::max();
  const SimContext ctx(g);
  std::atomic<int64_t> best{kNoViolation};
  std::optional<SweepFinding> finding;
  std::mutex source_mutex;
  std::mutex best_mutex;
  int64_t produced = 0;

  auto worker = [&]() {
    std::unique_ptr<WorkerSlot> slot_owner = checkout_slot();
    WorkerSlot& slot = *slot_owner;
    SweepStats scratch;
    for (;;) {
      int64_t start = 0;
      int n = 0;
      {
        const std::lock_guard<std::mutex> lock(source_mutex);
        const int64_t remaining = best.load(std::memory_order_acquire) - produced;
        if (remaining <= 0) break;
        const int want =
            static_cast<int>(std::min<int64_t>(batch_size, remaining));
        n = source.next_batch(want, slot.batch);
        if (n == 0) break;
        start = produced;
        produced += n;
      }
      for (int i = 0; i < n; ++i) {
        const int64_t index = start + i;
        if (index >= best.load(std::memory_order_relaxed)) break;
        if (!process_scenario(ctx, pattern, slot.batch.failures(i), slot.batch.source(i),
                              slot.batch.destination(i), opts_, scratch, slot.ws, slot.memo,
                              slot.promise_scratch)) {
          continue;
        }
        const std::lock_guard<std::mutex> lock(best_mutex);
        if (index < best.load(std::memory_order_relaxed)) {
          best.store(index, std::memory_order_release);
          // Re-simulate only the winning candidate with walk recording: the
          // simulation is deterministic, so the witness is identical, and
          // the hot loop above stays on the zero-allocation path.
          SweepFinding f;
          f.index = index;
          f.scenario = slot.batch.scenario(i);
          if (f.scenario.destination == kNoVertex) {
            f.tour = tour_packet(ctx, pattern, f.scenario.failures, f.scenario.source, slot.ws);
          } else {
            f.routing = route_packet(ctx, pattern, f.scenario.failures, f.scenario.source,
                                     Header{f.scenario.source, f.scenario.destination}, slot.ws);
          }
          finding = std::move(f);
        }
        break;  // later scenarios in this batch have larger indices
      }
    }
    checkin_slot(std::move(slot_owner));
  };

  run_on_pool(num_threads, worker);
  return finding;
}

std::optional<SweepFinding> SweepEngine::find_first_violation_sharded(
    const Graph& g, const ForwardingPattern& pattern, ScenarioSource& source,
    int shard_count) const {
  // Each shard preserves canonical order and the shards partition the
  // stream, so the canonical first violation is the shard-local first
  // violation whose global index is smallest. Shards run one after another
  // (each sweep is already parallel inside); a multi-process driver would
  // run them concurrently and resolve the same minimum.
  std::optional<SweepFinding> best;
  for (int i = 0; i < shard_count; ++i) {
    source.shard(i, shard_count);
    auto finding = find_first_violation(g, pattern, source);
    if (!finding.has_value()) continue;
    finding->index = source.global_index(finding->index);
    if (!best.has_value() || finding->index < best->index) best = std::move(finding);
  }
  source.shard(0, 1);
  return best;
}

}  // namespace pofl
