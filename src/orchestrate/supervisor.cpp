#include "orchestrate/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#include "orchestrate/posix_io.hpp"

namespace pofl {

namespace {

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool SupervisorResult::all_completed() const {
  return std::all_of(shards.begin(), shards.end(),
                     [](const ShardOutcome& s) { return s.completed; });
}

std::vector<int> SupervisorResult::missing() const {
  std::vector<int> out;
  for (const ShardOutcome& s : shards) {
    if (!s.completed) out.push_back(s.shard);
  }
  return out;
}

int SupervisorResult::resumed_from_checkpoint() const {
  int n = 0;
  for (const ShardOutcome& s : shards) n += s.from_checkpoint ? 1 : 0;
  return n;
}

ShardSupervisor::ShardSupervisor(ShardSupervisorOptions opts) : opts_(opts) {}

ShardSupervisor::~ShardSupervisor() { terminate_all(); }

/// Records a failed attempt for `shard`: schedules a backoff retry while
/// attempts remain, otherwise marks the shard exhausted. The failure
/// description always lands in the outcome so the operator sees the *last*
/// error even when a later retry succeeds or would have been allowed.
void ShardSupervisor::fail_attempt(int shard, const std::string& why,
                                   SupervisorResult& result) {
  Task& task = tasks_[static_cast<size_t>(shard)];
  ShardOutcome& outcome = result.shards[static_cast<size_t>(shard)];
  outcome.error = why;
  task.pid = -1;
  if (task.attempts <= opts_.retries) {
    // Capped exponential backoff: 1st retry after backoff_ms, then x2.
    int64_t delay = opts_.backoff_ms;
    for (int i = 1; i < task.attempts && delay < opts_.max_backoff_ms; ++i) delay *= 2;
    delay = std::min<int64_t>(delay, opts_.max_backoff_ms);
    task.state = State::kReady;
    task.ready_at_ms = now_ms() + delay;
    if (opts_.verbose) {
      std::fprintf(stderr, "supervisor: shard %d attempt %d/%d failed (%s); retrying in %lldms\n",
                   shard, task.attempts, opts_.retries + 1, why.c_str(),
                   static_cast<long long>(delay));
    }
  } else {
    task.state = State::kExhausted;
    if (opts_.verbose) {
      std::fprintf(stderr, "supervisor: shard %d failed after %d attempt(s): %s\n", shard,
                   task.attempts, why.c_str());
    }
  }
}

SupervisorResult ShardSupervisor::run(int shard_count, const Spawn& spawn,
                                      const Validate& validate) {
  SupervisorResult result;
  result.shards.resize(static_cast<size_t>(shard_count));
  tasks_.assign(static_cast<size_t>(shard_count), Task{});

  const int64_t timeout_ms =
      opts_.shard_timeout_s > 0 ? static_cast<int64_t>(opts_.shard_timeout_s * 1000.0) : 0;

  int open = 0;
  for (int i = 0; i < shard_count; ++i) {
    ShardOutcome& outcome = result.shards[static_cast<size_t>(i)];
    outcome.shard = i;
    // Checkpoint probe: output that already validates means the shard is
    // done before any worker runs — crash/resume for long sweeps.
    std::string err;
    if (validate && validate(i, err)) {
      outcome.completed = true;
      outcome.from_checkpoint = true;
      tasks_[static_cast<size_t>(i)].state = State::kDone;
      if (opts_.verbose) {
        std::fprintf(stderr, "supervisor: shard %d resumed from checkpoint\n", i);
      }
      continue;
    }
    tasks_[static_cast<size_t>(i)].ready_at_ms = now_ms();
    ++open;
  }

  // A reaped child's status becomes a completed shard (clean exit with
  // valid output) or a failed attempt (non-zero exit, signal, timeout,
  // torn output) — one classification for both the polling and the
  // blocking wait below.
  const auto handle_exit = [&](int shard, int status) {
    Task& task = tasks_[static_cast<size_t>(shard)];
    std::string why;
    if (task.timed_out) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "timed out after %gs", opts_.shard_timeout_s);
      why = buf;
    } else if (WIFSIGNALED(status)) {
      why = "killed by signal " + std::to_string(WTERMSIG(status));
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      why = "exited with status " + std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    } else {
      // Clean exit: believe it only if the output validates — a truncated
      // or corrupt shard JSON must count as a failed attempt, not a win.
      std::string verr;
      if (!validate || validate(shard, verr)) {
        task.state = State::kDone;
        task.pid = -1;
        ShardOutcome& outcome = result.shards[static_cast<size_t>(shard)];
        outcome.completed = true;
        outcome.error.clear();
        --open;
        if (opts_.verbose && task.attempts > 1) {
          std::fprintf(stderr, "supervisor: shard %d succeeded on attempt %d\n", shard,
                       task.attempts);
        }
        return;
      }
      why = verr.empty() ? "invalid output" : "invalid output: " + verr;
    }
    fail_attempt(shard, why, result);
    if (task.state == State::kExhausted) --open;
  };

  while (open > 0) {
    const int64_t now = now_ms();
    bool progressed = false;

    // Launch every shard whose backoff gate has opened.
    for (int i = 0; i < shard_count; ++i) {
      Task& task = tasks_[static_cast<size_t>(i)];
      if (task.state != State::kReady || task.ready_at_ms > now) continue;
      ++task.attempts;
      result.shards[static_cast<size_t>(i)].attempts = task.attempts;
      task.timed_out = false;
      task.term_sent = false;
      const pid_t pid = spawn(i, task.attempts - 1);
      progressed = true;
      if (pid < 0) {
        // The fork itself failed (EAGAIN under memory pressure is exactly
        // the transient this layer exists for): a failed attempt, retried
        // with backoff like any worker death.
        fail_attempt(i, "fork failed", result);
        if (tasks_[static_cast<size_t>(i)].state == State::kExhausted) --open;
        continue;
      }
      task.state = State::kRunning;
      task.pid = pid;
      task.deadline_ms = timeout_ms > 0 ? now + timeout_ms : 0;
    }

    // Reap finished children and enforce timeouts.
    for (int i = 0; i < shard_count; ++i) {
      Task& task = tasks_[static_cast<size_t>(i)];
      if (task.state != State::kRunning) continue;
      int status = 0;
      // EINTR-retried: a signal delivered to the (now resident) driver must
      // not make a healthy child look unreapable for one poll round.
      if (waitpid_eintr(task.pid, &status, WNOHANG) == task.pid) {
        progressed = true;
        handle_exit(i, status);
        continue;
      }
      // Still running: check the wall-clock budget. SIGTERM first so the
      // worker can die cleanly; workers that ignore it (or are wedged)
      // get SIGKILL after the grace window — re-armed, so even a kill
      // that races a stop/cont cycle lands eventually.
      if (task.deadline_ms > 0 && now >= task.deadline_ms && !task.term_sent) {
        task.timed_out = true;
        task.term_sent = true;
        task.kill_at_ms = now + opts_.term_grace_ms;
        kill(task.pid, SIGTERM);
        progressed = true;
      } else if (task.term_sent && now >= task.kill_at_ms) {
        kill(task.pid, SIGKILL);
        task.kill_at_ms = now + opts_.term_grace_ms;
        progressed = true;
      }
    }

    if (open == 0 || progressed) continue;

    // Idle: wait for the next event. With no timer pending (no backoff
    // gate, no timeout deadline) the only possible event is a child exit,
    // so block in waitpid for zero-latency reaping — polling here would
    // tax exactly the cores the workers are using, which matters to the
    // bench_perf speedup measurement riding this supervisor.
    int64_t next_event = std::numeric_limits<int64_t>::max();
    bool any_running = false;
    for (const Task& task : tasks_) {
      if (task.state == State::kReady) {
        next_event = std::min(next_event, task.ready_at_ms);
      } else if (task.state == State::kRunning) {
        any_running = true;
        if (task.term_sent) {
          next_event = std::min(next_event, task.kill_at_ms);
        } else if (task.deadline_ms > 0) {
          next_event = std::min(next_event, task.deadline_ms);
        }
      }
    }
    if (any_running && next_event == std::numeric_limits<int64_t>::max()) {
      int status = 0;
      // The blocking -1 wait is the syscall a daemon's signals interrupt
      // most often; without the EINTR retry, one stray SIGTERM-turned-
      // handled signal used to bounce this loop into a spurious idle pass.
      const pid_t pid = waitpid_eintr(-1, &status, 0);
      if (pid > 0) {
        for (int i = 0; i < shard_count; ++i) {
          if (tasks_[static_cast<size_t>(i)].state == State::kRunning &&
              tasks_[static_cast<size_t>(i)].pid == pid) {
            handle_exit(i, status);
            break;
          }
          // A pid we did not spawn (some other child of the embedding
          // process): nothing to do — its status is consumed, which is
          // the unavoidable cost of the blocking -1 wait.
        }
      }
    } else {
      sleep_ms_eintr(std::clamp<int64_t>(next_event - now, 1, 5));
    }
  }

  tasks_.clear();  // nothing left for the destructor to clean up
  return result;
}

/// Kills and reaps every still-running child: SIGTERM, a grace window,
/// then SIGKILL and a blocking wait. Called from the destructor so no exit
/// path — including an exception unwinding through run() — can leak a
/// worker process or a zombie.
void ShardSupervisor::terminate_all() {
  bool any = false;
  for (Task& task : tasks_) {
    if (task.state == State::kRunning && task.pid > 0) {
      kill(task.pid, SIGTERM);
      any = true;
    }
  }
  if (!any) {
    tasks_.clear();
    return;
  }
  const int64_t deadline = now_ms() + opts_.term_grace_ms;
  while (now_ms() < deadline) {
    bool live = false;
    for (Task& task : tasks_) {
      if (task.state != State::kRunning || task.pid <= 0) continue;
      int status = 0;
      if (waitpid_eintr(task.pid, &status, WNOHANG) == task.pid) {
        task.pid = -1;
        task.state = State::kExhausted;
      } else {
        live = true;
      }
    }
    if (!live) break;
    sleep_ms_eintr(5);
  }
  for (Task& task : tasks_) {
    if (task.state != State::kRunning || task.pid <= 0) continue;
    kill(task.pid, SIGKILL);
    int status = 0;
    waitpid_eintr(task.pid, &status, 0);
    task.pid = -1;
  }
  tasks_.clear();
}

}  // namespace pofl
