#pragma once

// Exhaustive adversary: the minimum-cardinality failure set defeating a given
// pattern. This is the ground truth behind Corollaries 3 and 4: on K7 at most
// 15 failures defeat any pattern, on K4,4 at most 11 — the bench measures
// the actual minimum budget over the pattern corpus.
//
// Since PR 9 the finders are thin wrappers over search/min_defeat: a
// best-first branch and bound proves the optimum and a canonical pass
// reconstructs the exact witness the old increasing-|F| Gosper enumeration
// reported (bit-identical — pinned by tests/min_defeat_search_test). Pass
// SearchOptions{.strategy = SearchStrategy::kEnumerate} to replay the legacy
// enumeration verbatim. The result is typed: kDefeated carries the witness,
// kNoDefeatWithinBudget means larger sets were not ruled out, and
// kPerfectlyResilient is a proof that no defeating set of any size exists
// (the old API returned an ambiguous nullopt for both of the latter).

#include "graph/connectivity_oracle.hpp"
#include "graph/graph.hpp"
#include "routing/forwarding.hpp"
#include "routing/simulator.hpp"
#include "search/min_defeat.hpp"

namespace pofl {

/// A constructed (not searched) defeat witness, used by the closed-form
/// attacks (k7_attack and friends).
struct Defeat {
  IdSet failures;
  VertexId source = kNoVertex;
  VertexId destination = kNoVertex;
  RoutingResult routing;
};

/// Smallest failure set F such that s,t stay connected in G\F but the packet
/// is not delivered. Exact; graphs up to EdgeMask::kMaxBits edges are
/// accepted (checked, throws). `max_budget` bounds |F|. An optional shared
/// ConnectivityOracle caches the per-failure-set component labels — corpus
/// drivers that attack many patterns on one graph re-test the same failure
/// sets, so sharing one oracle across calls pays the BFS once.
[[nodiscard]] MinDefeatResult find_minimum_defeat(const Graph& g, const ForwardingPattern& pattern,
                                                  VertexId source, VertexId destination,
                                                  int max_budget,
                                                  ConnectivityOracle* oracle = nullptr,
                                                  const SearchOptions& options = {});

/// Smallest defeating failure set over all (s,t) pairs.
[[nodiscard]] MinDefeatResult find_minimum_defeat_any_pair(const Graph& g,
                                                           const ForwardingPattern& pattern,
                                                           int max_budget,
                                                           ConnectivityOracle* oracle = nullptr,
                                                           const SearchOptions& options = {});

/// Touring version: smallest F such that some start's surviving component is
/// not toured (`source` in the result is the failing start).
[[nodiscard]] MinDefeatResult find_minimum_touring_defeat(const Graph& g,
                                                          const ForwardingPattern& pattern,
                                                          int max_budget,
                                                          const SearchOptions& options = {});

}  // namespace pofl
