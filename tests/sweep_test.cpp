#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "attacks/pattern_corpus.hpp"
#include "graph/builders.hpp"
#include "resilience/algorithm1_k5.hpp"
#include "sim/scenario.hpp"

namespace pofl {
namespace {

SweepOptions threads(int n) {
  SweepOptions opts;
  opts.num_threads = n;
  opts.batch_size = 7;  // deliberately odd, to exercise partial batches
  return opts;
}

TEST(ExhaustiveFailureSource, EnumeratesEveryScenarioExactlyOnce) {
  const Graph g = make_complete(4);  // m = 6
  ExhaustiveFailureSource source(g, 2, all_ordered_pairs(g));
  // (C(6,0) + C(6,1) + C(6,2)) failure sets x 12 ordered pairs.
  EXPECT_EQ(source.total_scenarios(), (1 + 6 + 15) * 12);

  std::vector<Scenario> all;
  while (source.next_batch(5, all) > 0) {
  }
  EXPECT_EQ(static_cast<int64_t>(all.size()), source.total_scenarios());
  for (const Scenario& sc : all) {
    EXPECT_LE(sc.failures.count(), 2);
    EXPECT_NE(sc.source, sc.destination);
  }

  // reset() replays the identical stream.
  source.reset();
  std::vector<Scenario> again;
  while (source.next_batch(64, again) > 0) {
  }
  ASSERT_EQ(again.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(again[i].failures, all[i].failures);
    EXPECT_EQ(again[i].source, all[i].source);
    EXPECT_EQ(again[i].destination, all[i].destination);
  }
}

TEST(RandomFailureSourceContract, ResetReplaysIdenticalExactCountDraws) {
  const Graph g = make_complete(5);
  auto source = RandomFailureSource::exact_count(g, 3, 20, /*seed=*/21, {{0, 4}});
  std::vector<Scenario> first;
  while (source.next_batch(8, first) > 0) {
  }
  source.reset();
  std::vector<Scenario> second;
  while (source.next_batch(8, second) > 0) {
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].failures, second[i].failures) << "draw " << i;
  }
}

TEST(RandomFailureSourceContract, ZeroTrialsIsAnEmptyStream) {
  const Graph g = make_complete(4);
  auto source = RandomFailureSource::iid(g, 0.2, /*trials_per_pair=*/0, 1, all_ordered_pairs(g));
  std::vector<Scenario> out;
  EXPECT_EQ(source.next_batch(16, out), 0);
  const SweepStats stats =
      SweepEngine(threads(2)).run(g, *make_id_cyclic_pattern(RoutingModel::kDestinationOnly),
                                  source);
  EXPECT_EQ(stats.total, 0);
}

TEST(ExhaustiveFailureSource, RejectsGraphsBeyondTheMaskWidth) {
  const Graph big = make_complete(12);  // 66 edges > 62
  EXPECT_THROW(ExhaustiveFailureSource(big, 1, all_ordered_pairs(big)), std::invalid_argument);
}

TEST(SweepStats, OutcomeCountsSumToScenarioTotal) {
  const Graph g = make_cycle(6);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);
  ExhaustiveFailureSource source(g, 3, all_ordered_pairs(g));

  const SweepStats stats = SweepEngine(threads(1)).run(g, *pattern, source);
  EXPECT_EQ(stats.total, source.total_scenarios());
  EXPECT_EQ(stats.delivered + stats.looped + stats.dropped + stats.invalid,
            stats.promise_held());
  EXPECT_EQ(stats.promise_held() + stats.promise_broken, stats.total);
  // With up to 3 of 6 cycle edges down, some draws must disconnect pairs.
  EXPECT_GT(stats.promise_broken, 0);
}

TEST(SweepEngine, SingleAndMultiThreadAggregatesMatch) {
  const Graph g = make_complete(5);
  const auto pattern = make_shortest_path_pattern(RoutingModel::kSourceDestination, g);

  auto run_with = [&](int num_threads) {
    RandomFailureSource source =
        RandomFailureSource::iid(g, 0.3, 40, /*seed=*/9, all_ordered_pairs(g));
    SweepOptions opts = threads(num_threads);
    opts.compute_stretch = true;
    return SweepEngine(opts).run(g, *pattern, source);
  };

  const SweepStats one = run_with(1);
  const SweepStats many = run_with(4);
  EXPECT_EQ(one.total, many.total);
  EXPECT_EQ(one.promise_broken, many.promise_broken);
  EXPECT_EQ(one.delivered, many.delivered);
  EXPECT_EQ(one.looped, many.looped);
  EXPECT_EQ(one.dropped, many.dropped);
  EXPECT_EQ(one.invalid, many.invalid);
  EXPECT_EQ(one.failures_seen, many.failures_seen);
  EXPECT_EQ(one.hops_delivered, many.hops_delivered);
  EXPECT_EQ(one.stretch_samples, many.stretch_samples);
  EXPECT_DOUBLE_EQ(one.max_stretch, many.max_stretch);
  EXPECT_NEAR(one.stretch_sum, many.stretch_sum, 1e-9);
}

TEST(SweepEngine, ExhaustiveAndSampledSweepsAgreeOnPerfectPattern) {
  // Algorithm 1 is perfectly resilient on K5 toward destination 4: every
  // sweep mode must report delivery rate exactly 1 for promise-holding
  // scenarios.
  const Graph k5 = make_complete(5);
  const auto alg1 = make_algorithm1_k5();
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId s = 0; s < 4; ++s) pairs.emplace_back(s, 4);

  ExhaustiveFailureSource exhaustive(k5, k5.num_edges(), pairs);
  const SweepStats full = SweepEngine(threads(2)).run(k5, *alg1, exhaustive);
  EXPECT_GT(full.promise_held(), 0);
  EXPECT_DOUBLE_EQ(full.delivery_rate(), 1.0);

  RandomFailureSource sampled = RandomFailureSource::iid(k5, 0.4, 500, /*seed=*/3, pairs);
  const SweepStats sub = SweepEngine(threads(2)).run(k5, *alg1, sampled);
  EXPECT_GT(sub.promise_held(), 0);
  EXPECT_DOUBLE_EQ(sub.delivery_rate(), 1.0);
}

TEST(SweepEngine, SampledRateTracksExhaustiveRate) {
  // For an imperfect pattern the Monte Carlo estimate must land near the
  // exhaustive ground truth (deterministic seed, so this is a fixed number).
  const Graph g = make_cycle(5);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);

  ExhaustiveFailureSource exhaustive(g, 1, all_ordered_pairs(g));
  const SweepStats truth = SweepEngine(threads(1)).run(g, *pattern, exhaustive);

  RandomFailureSource sampled =
      RandomFailureSource::exact_count(g, 1, 400, /*seed=*/5, all_ordered_pairs(g));
  const SweepStats estimate = SweepEngine(threads(2)).run(g, *pattern, sampled);

  EXPECT_NEAR(estimate.delivery_rate(), truth.delivery_rate(), 0.1);
}

TEST(SweepEngine, TouringScenariosTallyAsDeliveries) {
  // Right-hand-rule tour of a cycle: always leave via the non-inport edge.
  class AroundPattern final : public ForwardingPattern {
   public:
    [[nodiscard]] RoutingModel model() const override { return RoutingModel::kTouring; }
    [[nodiscard]] std::string name() const override { return "around"; }
    [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                                const IdSet& failures,
                                                const Header&) const override {
      for (EdgeId e : g.incident_edges(at)) {
        if (e != inport && !failures.contains(e)) return e;
      }
      return inport != kNoEdge ? std::optional<EdgeId>(inport) : std::nullopt;
    }
  };

  const Graph g = make_cycle(6);
  std::vector<Scenario> scenarios;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    scenarios.push_back(Scenario{g.empty_edge_set(), v, kNoVertex});
  }
  FixedScenarioSource source(std::move(scenarios), "tours");
  AroundPattern pattern;
  const SweepStats stats = SweepEngine(threads(2)).run(g, pattern, source);
  EXPECT_EQ(stats.total, g.num_vertices());
  EXPECT_EQ(stats.delivered, g.num_vertices());  // every tour succeeds
  EXPECT_EQ(stats.promise_broken, 0);
}

TEST(AdversarialCorpusSource, MinedDefeatsKeepThePromiseAndDefeatTheirPattern) {
  const Graph g = make_cycle(5);
  AdversarialCorpusSource source(g, RoutingModel::kDestinationOnly, /*max_budget=*/2,
                                 /*random_variants=*/1, /*seed=*/1);
  const auto& names = source.defeated_patterns();

  // Replay the mined library against one corpus member: by construction every
  // scenario keeps its (s, t) connected, so nothing can be promise-broken.
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);
  source.reset();
  const SweepStats stats = SweepEngine(threads(1)).run(g, *pattern, source);
  EXPECT_EQ(stats.total, static_cast<int64_t>(names.size()));
  EXPECT_EQ(stats.promise_broken, 0);
  EXPECT_EQ(stats.delivered + stats.looped + stats.dropped + stats.invalid, stats.total);
}

}  // namespace
}  // namespace pofl
