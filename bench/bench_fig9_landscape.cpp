// E4 — Figure 9: the feasibility landscape of local fast rerouting across
// header models and graph density. Every cell is *computed*: positive cells
// run the paper's construction through the engine-backed exhaustive verifier
// (early-exit parallel sweeps); negative cells defeat an entire candidate-
// pattern corpus with the matching attack, sharing one ConnectivityOracle
// across the corpus so each failure set's component BFS runs once.
//
// Paper layout (Fig. 9):
//   touring:             possible up to outerplanar;   impossible from K4 / K2,3
//   destination only:    possible up to K5^-2/K3,3^-2; impossible from K5^-1 / K3,3^-1
//   source-destination:  possible up to K5 / K3,3;     impossible from K7^-1 / K4,4^-1
//
// `--json <path>` writes every cell machine-readably. `--shard i/N`
// computes every N-th cell (cell ordinal i mod N) so the landscape's
// expensive corpus-defeat cells can spread across hosts; the JSON cell
// lists of all N shards union to the full figure.

#include <cstdio>
#include <functional>
#include <string>

#include "attacks/exhaustive.hpp"
#include "attacks/pattern_corpus.hpp"
#include "attacks/touring_attack.hpp"
#include "graph/builders.hpp"
#include "graph/connectivity_oracle.hpp"
#include "resilience/algorithm1_k5.hpp"
#include "resilience/k33_source.hpp"
#include "resilience/k5m2_dest.hpp"
#include "resilience/outerplanar_touring.hpp"
#include "routing/verifier.hpp"
#include "sim/sweep_json.hpp"

namespace {

using namespace pofl;

const char* verified_possible(bool ok) { return ok ? "POSSIBLE (verified)" : "BROKEN?!"; }

struct CellLog {
  JsonWriter* json;
  void possible(const std::string& row, const std::string& graph, bool ok) {
    json->begin_object();
    json->key("row").value(row);
    json->key("graph").value(graph);
    json->key("verdict").value(ok ? "possible" : "broken");
    json->end_object();
  }
  void impossible(const std::string& row, const std::string& graph, int defeated, int corpus) {
    json->begin_object();
    json->key("row").value(row);
    json->key("graph").value(graph);
    json->key("verdict").value("impossible");
    json->key("corpus_defeated").value(defeated);
    json->key("corpus_size").value(corpus);
    json->end_object();
  }
};

/// Defeats every corpus pattern; returns a cell string.
std::string defeat_cell(const Graph& g, RoutingModel model,
                        const std::function<bool(const ForwardingPattern&)>& defeat,
                        CellLog& log, const std::string& row, const std::string& graph) {
  const auto corpus = make_pattern_corpus(model, g, 2, 7);
  int defeated = 0;
  for (const auto& p : corpus) {
    if (defeat(*p)) ++defeated;
  }
  log.impossible(row, graph, defeated, static_cast<int>(corpus.size()));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "IMPOSSIBLE (%d/%zu defeated)", defeated, corpus.size());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pofl;
  const BenchArgs args = parse_bench_args(argc, argv);
  if (args.error || !args.positional.empty() || args.procs_set) {
    std::fprintf(stderr, "usage: %s [--threads <n>] [--json <path>] [--shard i/N]\n",
                 argv[0]);
    return 2;
  }
  const std::string& json_path = args.json_path;
  // Work-item sharding: each landscape cell gets an ordinal; --shard i/N
  // computes the cells with ordinal congruent to i mod N and skips the rest.
  int64_t next_cell = 0;
  const auto owns_cell = [&]() { return args.owns(next_cell++); };
  VerifyOptions vopts;
  vopts.num_threads = args.num_threads;
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("fig9_landscape");
  json.key("cells").begin_array();
  CellLog log{&json};

  std::printf("=== Figure 9: feasibility landscape (every cell computed) ===\n\n");

  // ---- Touring row ---------------------------------------------------------
  std::printf("[touring]\n");
  {
    if (owns_cell()) {
      const Graph c8 = make_cycle(8);
      const auto rh = make_outerplanar_touring(c8);
      const bool ok = !find_touring_violation(c8, *rh, vopts).has_value();
      std::printf("  outerplanar (C8 + right-hand rule): %s\n", verified_possible(ok));
      log.possible("touring", "C8", ok);
    }

    if (owns_cell()) {
      const Graph mop = make_random_maximal_outerplanar(8, 3);
      const auto rh2 = make_outerplanar_touring(mop);
      const bool ok2 = !find_touring_violation(mop, *rh2, vopts).has_value();
      std::printf("  maximal outerplanar n=8:            %s\n", verified_possible(ok2));
      log.possible("touring", "maximal-outerplanar-8", ok2);
    }

    for (const auto& [name, g] :
         {std::pair<const char*, Graph>{"K4", make_complete(4)},
          std::pair<const char*, Graph>{"K2,3", make_complete_bipartite(2, 3)}}) {
      if (!owns_cell()) continue;
      const auto cell = defeat_cell(
          g, RoutingModel::kTouring,
          [&](const ForwardingPattern& p) { return attack_touring(g, p).defeated(); }, log,
          "touring", name);
      std::printf("  %-35s %s\n", name, cell.c_str());
    }
    if (owns_cell()) {
      const auto prover_k4 = prove_touring_impossible(make_complete(4));
      const auto prover_k23 = prove_touring_impossible(make_complete_bipartite(2, 3));
      std::printf("  exhaustive prover: K4 %s over %lld cyclic patterns; K2,3 %s over %lld\n",
                  prover_k4.impossibility_established ? "impossible" : "POSSIBLE?!",
                  prover_k4.patterns_enumerated,
                  prover_k23.impossibility_established ? "impossible" : "POSSIBLE?!",
                  prover_k23.patterns_enumerated);
    }
  }

  // ---- Destination-only row ------------------------------------------------
  std::printf("\n[destination only]\n");
  {
    if (owns_cell()) {
      const Graph k5m2 = make_complete_minus(5, 2);
      const auto p1 = make_k5m2_dest_pattern(k5m2);
      const bool ok1 = p1 && !find_resilience_violation(k5m2, *p1, vopts).has_value();
      std::printf("  K5^-2  (Theorem 12 table):          %s\n", verified_possible(ok1));
      log.possible("destination", "K5^-2", ok1);
    }
    if (owns_cell()) {
      const Graph k33m2 = make_complete_bipartite_minus(3, 3, 2);
      const auto p2 = make_k33m2_dest_pattern(k33m2);
      const bool ok2 = p2 && !find_resilience_violation(k33m2, *p2, vopts).has_value();
      std::printf("  K3,3^-2 (Theorem 13 relay):         %s\n", verified_possible(ok2));
      log.possible("destination", "K3,3^-2", ok2);
    }

    for (const auto& [name, g] :
         {std::pair<const char*, Graph>{"K5^-1", make_complete_minus(5, 1)},
          std::pair<const char*, Graph>{"K3,3^-1", make_complete_bipartite_minus(3, 3, 1)}}) {
      if (!owns_cell()) continue;
      const Graph& graph = g;
      // One oracle across the whole corpus: every pattern's defeat search
      // enumerates the same failure sets.
      ConnectivityOracle oracle(graph);
      const auto cell = defeat_cell(
          graph, RoutingModel::kDestinationOnly,
          [&](const ForwardingPattern& p) {
            return find_minimum_defeat_any_pair(graph, p, graph.num_edges(), &oracle)
                .defeated();
          },
          log, "destination", name);
      std::printf("  %-35s %s\n", name, cell.c_str());
    }
  }

  // ---- Source-destination row ------------------------------------------------
  std::printf("\n[source + destination]\n");
  {
    if (owns_cell()) {
      const Graph k5 = make_complete(5);
      const auto alg1 = make_algorithm1_k5();
      const bool ok1 = !find_resilience_violation(k5, *alg1, vopts).has_value();
      std::printf("  K5   (Algorithm 1):                 %s\n", verified_possible(ok1));
      log.possible("source-destination", "K5", ok1);
    }
    if (owns_cell()) {
      const Graph k33 = make_complete_bipartite(3, 3);
      const auto tab = make_k33_source_pattern();
      const bool ok2 = !find_resilience_violation(k33, *tab, vopts).has_value();
      std::printf("  K3,3 (Theorem 9 tables):            %s\n", verified_possible(ok2));
      log.possible("source-destination", "K3,3", ok2);
    }

    if (owns_cell()) {
      const Graph k7 = make_complete(7);
      ConnectivityOracle oracle(k7);
      const auto cell = defeat_cell(
          k7, RoutingModel::kSourceDestination,
          [&](const ForwardingPattern& p) {
            return find_minimum_defeat(k7, p, 0, 6, 15, &oracle).defeated();
          },
          log, "source-destination", "K7");
      std::printf("  %-35s %s\n", "K7 (<=15 failures, Cor. 3)", cell.c_str());
    }
    if (owns_cell()) {
      const Graph k44 = make_complete_bipartite(4, 4);
      ConnectivityOracle oracle(k44);
      const auto cell = defeat_cell(
          k44, RoutingModel::kSourceDestination,
          [&](const ForwardingPattern& p) {
            return find_minimum_defeat(k44, p, 0, 7, 11, &oracle).defeated();
          },
          log, "source-destination", "K4,4");
      std::printf("  %-35s %s\n", "K4,4 (<=11 failures, Cor. 4)", cell.c_str());
    }
  }
  json.end_array();
  json.end_object();
  std::printf("\nExpected (paper): each row flips from POSSIBLE to IMPOSSIBLE exactly\n"
              "between the graphs listed, one link apart in the middle row.\n");
  if (!json_path.empty() && !write_json_file(json_path, json.str())) return 1;
  return 0;
}
