// P1 — engineering microbenchmarks (google-benchmark): the primitives the
// reproduction leans on. Not a paper artifact; tracks the cost of planarity
// testing, minor search, packet simulation and scenario sweeping. All
// simulation throughput numbers go through the SweepEngine, including a
// thread-scaling series.

#include <benchmark/benchmark.h>

#include "attacks/pattern_corpus.hpp"
#include "graph/builders.hpp"
#include "graph/connectivity.hpp"
#include "graph/minors.hpp"
#include "graph/planarity.hpp"
#include "resilience/algorithm1_k5.hpp"
#include "routing/simulator.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace pofl;

void BM_PlanarityRandomPlanar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_random_planar(n, 2 * n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_planar(g));
  }
}
BENCHMARK(BM_PlanarityRandomPlanar)->Arg(50)->Arg(200)->Arg(754);

void BM_OuterplanarityCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_random_outerplanar(n, 3 * n / 2, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_outerplanar(g));
  }
}
BENCHMARK(BM_OuterplanarityCheck)->Arg(50)->Arg(200);

void BM_ExactMinorK4(benchmark::State& state) {
  const Graph g = make_random_connected(10, 16, 5);
  const Graph k4 = make_complete(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_minor_exact(g, k4));
  }
}
BENCHMARK(BM_ExactMinorK4);

void BM_HeuristicMinorK5m1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = make_random_planar(n, 2 * n, 11);
  const Graph k5m1 = make_complete_minus(5, 1);
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_minor_heuristic(g, k5m1, seed++, 4));
  }
}
BENCHMARK(BM_HeuristicMinorK5m1)->Arg(50)->Arg(200);

void BM_EdgeConnectivity(benchmark::State& state) {
  const Graph g = make_complete(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_connectivity(g, 0, 1, g.empty_edge_set()));
  }
}
BENCHMARK(BM_EdgeConnectivity)->Arg(7)->Arg(13)->Arg(20);

void BM_RoutePacketK5(benchmark::State& state) {
  const Graph k5 = make_complete(5);
  const auto pattern = make_algorithm1_k5();
  const IdSet failures = failures_between(k5, {{0, 4}, {0, 1}, {1, 4}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_packet(k5, *pattern, failures, 0, Header{0, 4}));
  }
}
BENCHMARK(BM_RoutePacketK5);

// Exhaustive perfect-resilience verification of Algorithm 1 on K5, expressed
// as a full 2^10 x pairs sweep through the engine (replaces the bespoke
// find_resilience_violation loop benchmark).
void BM_SweepExhaustiveK5(benchmark::State& state) {
  const Graph k5 = make_complete(5);
  const auto pattern = make_algorithm1_k5();
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId s = 0; s < 4; ++s) pairs.emplace_back(s, 4);
  SweepOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  const SweepEngine engine(opts);
  ExhaustiveFailureSource source(k5, k5.num_edges(), pairs);
  int64_t scenarios = 0;
  for (auto _ : state) {
    source.reset();
    const SweepStats stats = engine.run(k5, *pattern, source);
    scenarios += stats.total;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(scenarios);
}
BENCHMARK(BM_SweepExhaustiveK5)->Arg(1)->Arg(2)->Arg(4);

// Monte Carlo sweep throughput on K8 with the id-cyclic corpus family
// (replaces the bespoke route_packet throughput loop).
void BM_SweepRandomK8(benchmark::State& state) {
  const Graph g = make_complete(8);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kSourceDestination);
  SweepOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  const SweepEngine engine(opts);
  auto source = RandomFailureSource::iid(g, 0.15, /*trials_per_pair=*/200, /*seed=*/5,
                                         all_ordered_pairs(g));
  int64_t scenarios = 0;
  for (auto _ : state) {
    source.reset();
    const SweepStats stats = engine.run(g, *pattern, source);
    scenarios += stats.total;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(scenarios);
}
BENCHMARK(BM_SweepRandomK8)->Arg(1)->Arg(2)->Arg(4);

// Stretch-instrumented sweep (adds one BFS per delivered scenario).
void BM_SweepStretchRing(benchmark::State& state) {
  const Graph g = make_ring_with_chords(24, 6, 3);
  const auto pattern = make_shortest_path_pattern(RoutingModel::kDestinationOnly, g);
  SweepOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  opts.compute_stretch = true;
  const SweepEngine engine(opts);
  auto source = RandomFailureSource::exact_count(g, 2, /*trials_per_pair=*/50, /*seed=*/9,
                                                 {{0, 12}, {3, 20}, {7, 15}});
  int64_t scenarios = 0;
  for (auto _ : state) {
    source.reset();
    const SweepStats stats = engine.run(g, *pattern, source);
    scenarios += stats.total;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(scenarios);
}
BENCHMARK(BM_SweepStretchRing)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
