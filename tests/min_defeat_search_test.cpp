// Pins the branch-and-bound minimum-defeat search to the ground truth it
// must reproduce bit for bit: the increasing-|F| Gosper enumerator.
//
//   * Exhaustive cross-check — on every seed theorem graph (K5, K3,3,
//     K5^-2, and a K4/cycle/wheel/outerplanar zoo), every pattern, every
//     ordered pair, full failure budget: the search's status and witness
//     must equal both the production enumerate strategy and an independent
//     reference enumerator written here from the defeat definition alone.
//   * Property harness — 200 seeded random graphs x rotating pattern
//     families: search == enumerator, proved lower bounds never exceed the
//     optimum, incumbent seeding never changes the answer, reruns are
//     deterministic.
//   * Typed statuses — kPerfectlyResilient vs kNoDefeatWithinBudget replace
//     the old ambiguous nullopt; regressions pin both on an undefeatable
//     pair and on budget-truncated searches.
//   * Verifier identity — the find_* fast paths answer exactly what the
//     engine sweep answers, at 1 and N threads, including r-tolerance.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "attacks/pattern_corpus.hpp"
#include "graph/bitmask.hpp"
#include "graph/builders.hpp"
#include "graph/connectivity.hpp"
#include "resilience/algorithm1_k5.hpp"
#include "resilience/k33_source.hpp"
#include "resilience/k5m2_dest.hpp"
#include "resilience/outerplanar_touring.hpp"
#include "routing/verifier.hpp"
#include "search/min_defeat.hpp"

namespace pofl {
namespace {

// ---- independent reference enumerator --------------------------------------
// Written from the defeat definition alone (promise first, then delivery),
// sharing no code with either production strategy beyond the mask iterator
// and the walk-recording simulator: strata ascending, Gosper order within a
// stratum, first hit wins.

std::optional<IdSet> reference_min_defeat(const Graph& g, const ForwardingPattern& pattern,
                                          VertexId s, VertexId t, int budget) {
  for (int k = 0; k <= budget; ++k) {
    std::optional<IdSet> found;
    for_each_k_subset(g.num_edges(), k, [&](const EdgeMask& mask) {
      IdSet f = edge_mask_to_set(g, mask);
      if (!connected(g, s, t, f)) return false;
      if (route_packet(g, pattern, f, s, Header{s, t}).outcome == RoutingOutcome::kDelivered) {
        return false;
      }
      found = std::move(f);
      return true;
    });
    if (found.has_value()) return found;
  }
  return std::nullopt;
}

void expect_identical(const MinDefeatResult& a, const MinDefeatResult& b, const char* what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_TRUE(a.failures == b.failures) << what;
  EXPECT_EQ(a.source, b.source) << what;
  EXPECT_EQ(a.destination, b.destination) << what;
  if (a.defeated() && b.defeated()) {
    EXPECT_EQ(a.routing.outcome, b.routing.outcome) << what;
    EXPECT_EQ(a.routing.hops, b.routing.hops) << what;
  }
}

/// Full-budget three-way identity on every ordered pair of `g`: search vs
/// production enumerator vs the reference above.
void cross_check_all_pairs(const Graph& g, const ForwardingPattern& pattern) {
  const int m = g.num_edges();
  SearchOptions enumerate;
  enumerate.strategy = SearchStrategy::kEnumerate;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (s == t) continue;
      SCOPED_TRACE(pattern.name() + " pair " + std::to_string(s) + "->" + std::to_string(t));
      const MinDefeatResult bnb = min_defeat_search(g, pattern, s, t, m);
      const MinDefeatResult en = min_defeat_search(g, pattern, s, t, m, enumerate);
      expect_identical(bnb, en, "search vs production enumerator");

      const auto ref = reference_min_defeat(g, pattern, s, t, m);
      ASSERT_EQ(bnb.defeated(), ref.has_value());
      if (ref.has_value()) {
        EXPECT_TRUE(bnb.failures == *ref) << "search witness != reference witness";
        EXPECT_EQ(bnb.telemetry.proved_bound, bnb.failures.count());
      } else {
        // Full budget and nothing found: the typed result must say *proven*,
        // for the search and the enumerator alike.
        EXPECT_EQ(bnb.status, MinDefeatStatus::kPerfectlyResilient);
        EXPECT_EQ(bnb.telemetry.proved_bound, m + 1);
      }
    }
  }
}

// ---- exhaustive cross-check on the seed theorem graphs ---------------------

TEST(MinDefeatCrossCheck, K5Algorithm1AllPairs) {
  const Graph k5 = make_complete(5);
  cross_check_all_pairs(k5, *make_algorithm1_k5());
}

TEST(MinDefeatCrossCheck, K5CorpusAllPairs) {
  const Graph k5 = make_complete(5);
  for (const auto& p : make_pattern_corpus(RoutingModel::kSourceDestination, k5, 1, 11)) {
    cross_check_all_pairs(k5, *p);
  }
}

TEST(MinDefeatCrossCheck, K33SourcePatternAllPairs) {
  const Graph k33 = make_complete_bipartite(3, 3);
  cross_check_all_pairs(k33, *make_k33_source_pattern());
}

TEST(MinDefeatCrossCheck, K5MinusTwoDestPatternAllPairs) {
  const Graph g = make_complete_minus(5, 2);
  cross_check_all_pairs(g, *make_k5m2_dest_pattern(g));
}

TEST(MinDefeatCrossCheck, MinorZooCorpusAllPairs) {
  const Graph zoo[] = {make_complete(4), make_cycle(5), make_wheel(5),
                       make_random_maximal_outerplanar(6, 3)};
  for (const Graph& g : zoo) {
    for (const auto& p : make_pattern_corpus(RoutingModel::kSourceDestination, g, 1, 29)) {
      cross_check_all_pairs(g, *p);
    }
  }
}

// ---- randomized property harness -------------------------------------------

std::unique_ptr<ForwardingPattern> property_pattern(int seed, const Graph& g) {
  switch (seed % 5) {
    case 0: return make_shortest_path_pattern(RoutingModel::kSourceDestination, g);
    case 1: return make_id_cyclic_pattern(RoutingModel::kSourceDestination);
    case 2: return make_bounce_shy_pattern(RoutingModel::kSourceDestination, g);
    case 3: return make_random_cyclic_pattern(RoutingModel::kSourceDestination, g,
                                              static_cast<uint64_t>(seed));
    default: return make_random_stateless_pattern(RoutingModel::kSourceDestination,
                                                  static_cast<uint64_t>(seed));
  }
}

TEST(MinDefeatProperty, TwoHundredSeededRandomGraphs) {
  for (int seed = 1; seed <= 200; ++seed) {
    const int n = 4 + seed % 9;  // 4..12 vertices
    const int max_m = n * (n - 1) / 2;
    const int m_target = std::min(n - 1 + seed % 5, max_m);
    const Graph g = make_random_connected(n, m_target, static_cast<uint64_t>(seed));
    const auto pattern = property_pattern(seed, g);

    const VertexId s = static_cast<VertexId>(seed % n);
    VertexId t = static_cast<VertexId>((seed * 7 + 3) % n);
    if (t == s) t = static_cast<VertexId>((t + 1) % n);
    const int m = g.num_edges();
    SCOPED_TRACE("seed " + std::to_string(seed) + " n=" + std::to_string(n) +
                 " m=" + std::to_string(m) + " " + pattern->name() + " " + std::to_string(s) +
                 "->" + std::to_string(t));

    SearchOptions enumerate;
    enumerate.strategy = SearchStrategy::kEnumerate;
    const MinDefeatResult bnb = min_defeat_search(g, *pattern, s, t, m);
    const MinDefeatResult en = min_defeat_search(g, *pattern, s, t, m, enumerate);
    expect_identical(bnb, en, "search vs enumerator");

    // The proven lower bound may never exceed the optimum (= witness size
    // when defeated, m + 1 when the pair is perfectly resilient).
    const int optimum = bnb.defeated() ? bnb.failures.count() : m + 1;
    EXPECT_LE(bnb.telemetry.proved_bound, optimum);
    EXPECT_EQ(bnb.telemetry.proved_bound, optimum);  // full budget: bound is tight
    EXPECT_GE(bnb.telemetry.root_min_cut, 1);        // the graph is connected

    // Incumbent seeding (greedy probes on, corpus candidates in) versus the
    // cold search: the answer may never move, only the bound-closing speed.
    const auto candidates =
        corpus_upper_bound_candidates(g, RoutingModel::kSourceDestination, s, t, m);
    SearchOptions seeded;
    seeded.upper_bound_candidates = &candidates;
    SearchOptions cold;
    cold.seed_incumbents = false;
    expect_identical(min_defeat_search(g, *pattern, s, t, m, seeded), bnb, "seeded vs default");
    expect_identical(min_defeat_search(g, *pattern, s, t, m, cold), bnb, "cold vs default");

    // Deterministic: a rerun reproduces the witness and the whole telemetry
    // trace, not just the answer.
    if (seed % 10 == 0) {
      const MinDefeatResult again = min_defeat_search(g, *pattern, s, t, m);
      expect_identical(again, bnb, "rerun vs first run");
      EXPECT_EQ(again.telemetry.nodes_expanded, bnb.telemetry.nodes_expanded);
      EXPECT_EQ(again.telemetry.leaves_verified, bnb.telemetry.leaves_verified);
      EXPECT_EQ(again.telemetry.incumbent_trajectory, bnb.telemetry.incumbent_trajectory);
    }
  }
}

// ---- typed statuses ---------------------------------------------------------

TEST(MinDefeatStatusTyped, UndefeatablePairIsProvenResilient) {
  // On a path, any failure on the one s-t route breaks the connectivity
  // promise, and with no failures shortest-path delivers: no defeating set
  // of any size exists, and the search must say *proven*, not "none found".
  const Graph p4 = make_path(4);
  const auto pattern = make_shortest_path_pattern(RoutingModel::kSourceDestination, p4);
  for (const SearchStrategy strategy :
       {SearchStrategy::kAuto, SearchStrategy::kBranchAndBound, SearchStrategy::kEnumerate}) {
    SearchOptions opts;
    opts.strategy = strategy;
    const auto r = min_defeat_search(p4, *pattern, 0, 3, p4.num_edges(), opts);
    EXPECT_EQ(r.status, MinDefeatStatus::kPerfectlyResilient) << to_string(strategy);
    EXPECT_FALSE(r.defeated());
    EXPECT_EQ(r.failures.count(), 0);
    EXPECT_EQ(r.telemetry.proved_bound, p4.num_edges() + 1);
  }
}

TEST(MinDefeatStatusTyped, BudgetBelowOptimumIsNoDefeatWithinBudget) {
  const Graph k5 = make_complete(5);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kSourceDestination);
  const auto full = min_defeat_search(k5, *pattern, 0, 4, k5.num_edges());
  ASSERT_TRUE(full.defeated());
  const int k_star = full.failures.count();
  ASSERT_GE(k_star, 1);

  // One below the optimum: a defeat exists, so "perfectly resilient" would
  // be a lie — both strategies must report the budget-bounded status.
  SearchOptions enumerate;
  enumerate.strategy = SearchStrategy::kEnumerate;
  for (const SearchOptions& opts : {SearchOptions{}, enumerate}) {
    const auto below = min_defeat_search(k5, *pattern, 0, 4, k_star - 1, opts);
    EXPECT_EQ(below.status, MinDefeatStatus::kNoDefeatWithinBudget)
        << to_string(opts.strategy);
    EXPECT_EQ(below.telemetry.proved_bound, k_star);  // budget + 1

    // At exactly the optimum the witness reappears, bit-identical.
    const auto at = min_defeat_search(k5, *pattern, 0, 4, k_star, opts);
    expect_identical(at, full, "budget k* vs full budget");
  }
}

TEST(MinDefeatStatusTyped, NegativeBudgetFindsNothing) {
  const Graph k4 = make_complete(4);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kSourceDestination);
  const auto r = min_defeat_search(k4, *pattern, 0, 3, -1);
  EXPECT_EQ(r.status, MinDefeatStatus::kNoDefeatWithinBudget);
  EXPECT_EQ(r.telemetry.strategy, "none");
}

// ---- escape hatches ---------------------------------------------------------

TEST(MinDefeatFallback, NodeCapFallsBackToExactEnumeration) {
  const Graph k5 = make_complete(5);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kSourceDestination);
  const auto def = min_defeat_search(k5, *pattern, 0, 4, k5.num_edges());
  SearchOptions capped;
  capped.node_cap = 1;
  const auto r = min_defeat_search(k5, *pattern, 0, 4, k5.num_edges(), capped);
  expect_identical(r, def, "node-cap fallback vs default");
}

TEST(MinDefeatFallback, CustomPromiseForcesEnumerateFallback) {
  // A custom predicate (even one equal to the default promise) is opaque to
  // the bound machinery, so kAuto must route through enumeration — and agree
  // with the explicit kEnumerate run under the same predicate.
  const Graph k5 = make_complete(5);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kSourceDestination);
  SearchOptions custom;
  custom.promise = [](const Graph& graph, VertexId s, VertexId t, const IdSet& f) {
    return connected(graph, s, t, f);
  };
  const auto r = min_defeat_search(k5, *pattern, 0, 4, k5.num_edges(), custom);
  EXPECT_EQ(r.telemetry.strategy, "enumerate-fallback");
  const auto def = min_defeat_search(k5, *pattern, 0, 4, k5.num_edges());
  expect_identical(r, def, "custom promise vs default promise");
}

// ---- any-pair and touring ----------------------------------------------------

TEST(MinDefeatAnyPair, StrategiesAgreeOnSmallGraphs) {
  const Graph zoo[] = {make_complete(4), make_complete_bipartite(2, 3), make_cycle(4)};
  SearchOptions enumerate;
  enumerate.strategy = SearchStrategy::kEnumerate;
  for (const Graph& g : zoo) {
    for (const auto& p : make_pattern_corpus(RoutingModel::kSourceDestination, g, 1, 5)) {
      SCOPED_TRACE(p->name() + " on m=" + std::to_string(g.num_edges()));
      const auto bnb = min_defeat_search_any_pair(g, *p, g.num_edges());
      const auto en = min_defeat_search_any_pair(g, *p, g.num_edges(), enumerate);
      expect_identical(bnb, en, "any-pair search vs enumerator");
    }
  }
}

TEST(MinDefeatTouring, StrategiesAgreeOnSmallGraphs) {
  const Graph zoo[] = {make_complete(4), make_cycle(4), make_cycle(5)};
  SearchOptions enumerate;
  enumerate.strategy = SearchStrategy::kEnumerate;
  for (const Graph& g : zoo) {
    const auto pattern = make_id_cyclic_pattern(RoutingModel::kTouring);
    const auto bnb = min_touring_defeat_search(g, *pattern, g.num_edges());
    const auto en = min_touring_defeat_search(g, *pattern, g.num_edges(), enumerate);
    expect_identical(bnb, en, "touring search vs enumerator");
  }
}

TEST(MinDefeatTouring, OuterplanarTourIsResilientBothWays) {
  // Theorem: the outerplanar touring pattern is perfectly resilient — the
  // search must *prove* it (typed status), matching the enumerator.
  const Graph c5 = make_cycle(5);
  const auto pattern = make_outerplanar_touring(c5);
  SearchOptions enumerate;
  enumerate.strategy = SearchStrategy::kEnumerate;
  const auto bnb = min_touring_defeat_search(c5, *pattern, c5.num_edges());
  const auto en = min_touring_defeat_search(c5, *pattern, c5.num_edges(), enumerate);
  EXPECT_EQ(bnb.status, MinDefeatStatus::kPerfectlyResilient);
  expect_identical(bnb, en, "touring resilience proof");
}

// ---- verifier identity -------------------------------------------------------

void expect_same_violation(const std::optional<Violation>& a, const std::optional<Violation>& b,
                           const char* what) {
  ASSERT_EQ(a.has_value(), b.has_value()) << what;
  if (!a.has_value()) return;
  EXPECT_TRUE(a->failures == b->failures) << what;
  EXPECT_EQ(a->source, b->source) << what;
  EXPECT_EQ(a->destination, b->destination) << what;
  EXPECT_EQ(a->routing.outcome, b->routing.outcome) << what;
}

TEST(MinDefeatVerifier, PairFinderMatchesEngineAtOneAndFourThreads) {
  const Graph k5 = make_complete(5);
  const auto defeatable = make_id_cyclic_pattern(RoutingModel::kSourceDestination);
  const auto resilient = make_algorithm1_k5();
  for (const int threads : {1, 4}) {
    VerifyOptions engine;
    engine.search = SearchStrategy::kEnumerate;
    engine.num_threads = threads;
    VerifyOptions search;
    search.num_threads = threads;
    expect_same_violation(find_resilience_violation_for_pair(k5, *defeatable, 0, 4, search),
                          find_resilience_violation_for_pair(k5, *defeatable, 0, 4, engine),
                          "defeatable pair");
    expect_same_violation(find_resilience_violation_for_pair(k5, *resilient, 0, 4, search),
                          find_resilience_violation_for_pair(k5, *resilient, 0, 4, engine),
                          "resilient pair");
    EXPECT_FALSE(find_resilience_violation_for_pair(k5, *resilient, 0, 4, search).has_value());
  }
}

TEST(MinDefeatVerifier, AllPairsFinderMatchesEngine) {
  const Graph k4 = make_complete(4);
  for (const auto& p : make_pattern_corpus(RoutingModel::kSourceDestination, k4, 1, 17)) {
    VerifyOptions engine;
    engine.search = SearchStrategy::kEnumerate;
    engine.num_threads = 1;
    VerifyOptions search;
    search.num_threads = 1;
    expect_same_violation(find_resilience_violation(k4, *p, search),
                          find_resilience_violation(k4, *p, engine), p->name().c_str());
  }
}

TEST(MinDefeatVerifier, RToleranceFinderMatchesEngine) {
  const Graph k5 = make_complete(5);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kSourceDestination);
  for (const int r : {1, 2, 3}) {
    VerifyOptions engine;
    engine.search = SearchStrategy::kEnumerate;
    engine.num_threads = 1;
    VerifyOptions search;
    search.num_threads = 1;
    expect_same_violation(find_r_tolerance_violation(k5, *pattern, 0, 4, r, search),
                          find_r_tolerance_violation(k5, *pattern, 0, 4, r, engine),
                          ("r=" + std::to_string(r)).c_str());
  }
}

}  // namespace
}  // namespace pofl
