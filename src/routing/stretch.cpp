#include "routing/stretch.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "graph/fast_rand.hpp"
#include "routing/simulator.hpp"

namespace pofl {

StretchStats measure_stretch(const Graph& g, const ForwardingPattern& pattern, VertexId s,
                             VertexId t, int num_failures, int trials, uint64_t seed) {
  FastRng rng(seed);
  StretchStats stats;
  double stretch_sum = 0.0;
  long long hops_sum = 0;

  // One context/workspace/mask for all trials: the walk is never inspected
  // here, so every trial rides the outcome-only fast path, and the draws
  // (one Floyd exact-count sample per trial) match
  // RandomFailureSource::exact_count call for call — equal seeds keep the
  // engine and this estimator on identical failure sets.
  const SimContext ctx(g);
  RoutingWorkspace ws;
  IdSet failures;

  for (int trial = 0; trial < trials; ++trial) {
    floyd_sample(rng, g.num_edges(), std::min(num_failures, g.num_edges()), failures);
    const auto d = distance(g, s, t, failures);
    if (!d.has_value() || *d == 0) continue;  // promise broken (or s == t)
    const FastRouteResult r = route_packet_fast(ctx, pattern, failures, s, Header{s, t}, ws);
    if (r.outcome != RoutingOutcome::kDelivered) {
      ++stats.failed_deliveries;
      continue;
    }
    ++stats.samples;
    const double stretch = static_cast<double>(r.hops) / *d;
    stretch_sum += stretch;
    hops_sum += r.hops;
    stats.max_stretch = std::max(stats.max_stretch, stretch);
  }
  if (stats.samples > 0) {
    stats.mean_stretch = stretch_sum / stats.samples;
    stats.mean_hops = static_cast<double>(hops_sum) / stats.samples;
  }
  return stats;
}

}  // namespace pofl
