// Machine-checked versions of the paper's positive theorems: each algorithm
// is verified by *exhaustive* enumeration of failure sets on its target
// graph (2^m cases), which turns Theorems 3, 4, 5, 8, 9, 12, 13 and
// Corollaries 5, 6 into executable statements.

#include <gtest/gtest.h>

#include <random>

#include "graph/builders.hpp"
#include "graph/connectivity.hpp"
#include "resilience/algorithm1_k5.hpp"
#include "resilience/dest_via_touring.hpp"
#include "resilience/distance_patterns.hpp"
#include "resilience/k33_source.hpp"
#include "resilience/k5m2_dest.hpp"
#include "resilience/outerplanar_touring.hpp"
#include "routing/verifier.hpp"

namespace pofl {
namespace {

std::string describe(const Violation& v) {
  std::string out = "F={";
  for (int e : v.failures.to_vector()) out += std::to_string(e) + ",";
  out += "} s=" + std::to_string(v.source) + " t=" + std::to_string(v.destination);
  out += " outcome=";
  out += to_string(v.routing.outcome);
  out += " walk=";
  for (VertexId w : v.routing.walk) out += std::to_string(w) + " ";
  return out;
}

// ---- Theorem 8: Algorithm 1 is perfectly resilient on K5 ------------------

TEST(Algorithm1, PerfectlyResilientOnK5Exhaustive) {
  const Graph k5 = make_complete(5);  // 10 edges -> 1024 failure sets
  const auto pattern = make_algorithm1_k5();
  const auto violation = find_resilience_violation(k5, *pattern);
  EXPECT_FALSE(violation.has_value()) << describe(*violation);
}

TEST(Algorithm1, PerfectlyResilientOnAllK5Subgraphs) {
  // Subgraphs = failure sets baked in; still re-verify on materialized
  // subgraphs to exercise graphs where links are absent rather than failed.
  std::mt19937_64 rng(3);
  const Graph k5 = make_complete(5);
  const auto pattern = make_algorithm1_k5();
  for (int trial = 0; trial < 40; ++trial) {
    IdSet removed = k5.empty_edge_set();
    for (EdgeId e = 0; e < k5.num_edges(); ++e) {
      if (rng() % 3 == 0) removed.insert(e);
    }
    const Graph sub = k5.without_edges(removed);
    const auto violation = find_resilience_violation(sub, *pattern);
    EXPECT_FALSE(violation.has_value()) << sub.to_string() << " " << describe(*violation);
  }
}

TEST(Algorithm1, HandlesSmallerCompleteGraphs) {
  for (int n : {2, 3, 4}) {
    const Graph g = make_complete(n);
    const auto pattern = make_algorithm1_k5();
    const auto violation = find_resilience_violation(g, *pattern);
    EXPECT_FALSE(violation.has_value()) << "K" << n << ": " << describe(*violation);
  }
}

// ---- Theorem 9: K3,3 source-destination table ------------------------------

TEST(K33Source, PerfectlyResilientOnK33Exhaustive) {
  const Graph k33 = make_complete_bipartite(3, 3);  // 9 edges -> 512 sets
  const auto pattern = make_k33_source_pattern();
  const auto violation = find_resilience_violation(k33, *pattern);
  EXPECT_FALSE(violation.has_value()) << describe(*violation);
}

TEST(K33Source, PerfectlyResilientOnK33Subgraphs) {
  std::mt19937_64 rng(5);
  const Graph k33 = make_complete_bipartite(3, 3);
  const auto pattern = make_k33_source_pattern();
  for (int trial = 0; trial < 40; ++trial) {
    IdSet removed = k33.empty_edge_set();
    for (EdgeId e = 0; e < k33.num_edges(); ++e) {
      if (rng() % 3 == 0) removed.insert(e);
    }
    const Graph sub = k33.without_edges(removed);
    const auto violation = find_resilience_violation(sub, *pattern);
    EXPECT_FALSE(violation.has_value()) << sub.to_string() << " " << describe(*violation);
  }
}

// ---- Corollary 6 (positive half): outerplanar right-hand touring ----------

TEST(OuterplanarTouring, ToursCycleExhaustive) {
  const Graph g = make_cycle(6);
  const auto pattern = make_outerplanar_touring(g);
  ASSERT_NE(pattern, nullptr);
  const auto violation = find_touring_violation(g, *pattern);
  EXPECT_FALSE(violation.has_value());
}

TEST(OuterplanarTouring, ToursMaximalOuterplanarExhaustive) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_random_maximal_outerplanar(8, seed);  // 13 edges
    const auto pattern = make_outerplanar_touring(g);
    ASSERT_NE(pattern, nullptr);
    const auto violation = find_touring_violation(g, *pattern);
    EXPECT_FALSE(violation.has_value())
        << g.to_string() << " seed=" << seed << " start=" << violation->source;
  }
}

TEST(OuterplanarTouring, ToursTreesAndBlockTreesExhaustive) {
  // Trees: every edge is a bridge; the tour must double back everywhere.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_random_tree(8, seed);
    const auto pattern = make_outerplanar_touring(g);
    ASSERT_NE(pattern, nullptr);
    EXPECT_FALSE(find_touring_violation(g, *pattern).has_value()) << g.to_string();
  }
  // Two triangles sharing a vertex plus a pendant: block tree with cut nodes.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  g.add_edge(4, 5);
  const auto pattern = make_outerplanar_touring(g);
  ASSERT_NE(pattern, nullptr);
  EXPECT_FALSE(find_touring_violation(g, *pattern).has_value());
}

TEST(OuterplanarTouring, RandomOuterplanarSweep) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 6);
    const Graph g = make_random_outerplanar(n, n - 1 + static_cast<int>(rng() % n), rng());
    if (g.num_edges() > 16) continue;  // keep exhaustive enumeration fast
    const auto pattern = make_outerplanar_touring(g);
    ASSERT_NE(pattern, nullptr);
    const auto violation = find_touring_violation(g, *pattern);
    EXPECT_FALSE(violation.has_value()) << g.to_string();
  }
}

TEST(OuterplanarTouring, RefusesNonOuterplanar) {
  EXPECT_EQ(make_outerplanar_touring(make_complete(4)), nullptr);
  EXPECT_EQ(make_outerplanar_touring(make_complete_bipartite(2, 3)), nullptr);
}

// ---- Corollary 5: destination-based via touring G \ t ----------------------

TEST(DestViaTouring, WheelHubDestinationExhaustive) {
  // Wheel: removing the hub leaves a cycle (outerplanar). Perfectly
  // resilient routing toward the hub must exist.
  const Graph g = make_wheel(5);  // 10 edges
  const VertexId hub = 5;
  auto pattern = DestViaTouringPattern::create(g, hub);
  ASSERT_TRUE(pattern.has_value());
  std::optional<Violation> violation;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (s == hub) continue;
    violation = find_resilience_violation_for_pair(g, *pattern, s, hub);
    EXPECT_FALSE(violation.has_value()) << "s=" << s << " " << describe(*violation);
  }
}

TEST(DestViaTouring, AllDestinationsOnOuterplanarPlusApexishGraphs) {
  // K4 minus one edge: G\t outerplanar for every t; 5 edges, all dests.
  const Graph g = make_complete_minus(4, 1);
  auto pattern = DestViaTouringAllPattern::create(g);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_FALSE(find_resilience_violation(g, *pattern).has_value());
}

TEST(DestViaTouring, Corollary5DestinationList) {
  const Graph wheel = make_wheel(5);
  const auto dests = corollary5_destinations(wheel);
  // Hub removal leaves a cycle: hub qualifies. Rim removals leave a fan
  // (outerplanar too, for W5): check expected membership explicitly.
  EXPECT_NE(std::find(dests.begin(), dests.end(), 5), dests.end());
  const Graph k5 = make_complete(5);
  EXPECT_TRUE(corollary5_destinations(k5).empty());  // K4 remains: not outerplanar
}

TEST(DestViaTouring, RejectsWhenReducedGraphNotOuterplanar) {
  const Graph k5 = make_complete(5);
  EXPECT_FALSE(DestViaTouringPattern::create(k5, 0).has_value());
}

// ---- Theorem 12: K5^-2 destination-based ------------------------------------

TEST(K5Minus2, PerfectlyResilientBothLinksAtT) {
  // make_complete_minus(5,2) removes (2,4) and (3,4): vertex 4 keeps
  // neighbors {0,1} and G\4 = K4 — the Fig. 4/5 worst case.
  const Graph g = make_complete_minus(5, 2);
  const auto pattern = make_k5m2_dest_pattern(g);
  ASSERT_NE(pattern, nullptr);
  const auto violation = find_resilience_violation(g, *pattern);
  EXPECT_FALSE(violation.has_value()) << describe(*violation);
}

TEST(K5Minus2, PerfectlyResilientAllRemovalPlacements) {
  // Every way of deleting two links from K5 (up to edge ids), exhaustive.
  const Graph k5 = make_complete(5);
  for (EdgeId e1 = 0; e1 < k5.num_edges(); ++e1) {
    for (EdgeId e2 = e1 + 1; e2 < k5.num_edges(); ++e2) {
      IdSet removed = k5.empty_edge_set();
      removed.insert(e1);
      removed.insert(e2);
      const Graph g = k5.without_edges(removed);
      const auto pattern = make_k5m2_dest_pattern(g);
      ASSERT_NE(pattern, nullptr) << g.to_string();
      const auto violation = find_resilience_violation(g, *pattern);
      EXPECT_FALSE(violation.has_value()) << g.to_string() << " " << describe(*violation);
    }
  }
}

TEST(K5Minus2, NoPatternForK5OrK5Minus1) {
  EXPECT_EQ(make_k5m2_dest_pattern(make_complete(5)), nullptr);
  EXPECT_EQ(make_k5m2_dest_pattern(make_complete_minus(5, 1)), nullptr);
}

// ---- Theorem 13: K3,3^-2 destination-based ----------------------------------

TEST(K33Minus2, PerfectlyResilientAllRemovalPlacements) {
  const Graph k33 = make_complete_bipartite(3, 3);
  for (EdgeId e1 = 0; e1 < k33.num_edges(); ++e1) {
    for (EdgeId e2 = e1 + 1; e2 < k33.num_edges(); ++e2) {
      IdSet removed = k33.empty_edge_set();
      removed.insert(e1);
      removed.insert(e2);
      const Graph g = k33.without_edges(removed);
      const auto pattern = make_k33m2_dest_pattern(g);
      ASSERT_NE(pattern, nullptr) << g.to_string();
      const auto violation = find_resilience_violation(g, *pattern);
      EXPECT_FALSE(violation.has_value()) << g.to_string() << " " << describe(*violation);
    }
  }
}

TEST(K33Minus2, NoPatternForK33OrK33Minus1) {
  EXPECT_EQ(make_k33m2_dest_pattern(make_complete_bipartite(3, 3)), nullptr);
  EXPECT_EQ(make_k33m2_dest_pattern(make_complete_bipartite_minus(3, 3, 1)), nullptr);
}

// ---- [2, Thm 6.1] + Theorem 3: distance-2 pattern and K_{2r+1} tolerance ---

TEST(Distance2, DeliversWheneverDistanceAtMost2OnK5) {
  const Graph k5 = make_complete(5);
  const auto pattern = make_distance2_pattern();
  const auto violation = find_distance_promise_violation(k5, *pattern, 2);
  EXPECT_FALSE(violation.has_value()) << describe(*violation);
}

TEST(Distance2, DeliversWheneverDistanceAtMost2OnRandomGraphs) {
  std::mt19937_64 rng(17);
  const auto pattern = make_distance2_pattern();
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 3);
    const int max_m = n * (n - 1) / 2;
    const Graph g =
        make_random_connected(n, std::min(max_m, n + static_cast<int>(rng() % n)), rng());
    if (g.num_edges() > 14) continue;
    const auto violation = find_distance_promise_violation(g, *pattern, 2);
    EXPECT_FALSE(violation.has_value()) << g.to_string() << " " << describe(*violation);
  }
}

TEST(Distance2, Theorem3_K5IsTwoTolerant) {
  // K_{2r+1} with r=2: under any failures keeping s,t 2-connected the
  // distance-2 pattern delivers (a common neighbor survives by pigeonhole).
  const Graph k5 = make_complete(5);
  const auto pattern = make_distance2_pattern();
  for (VertexId s = 0; s < 5; ++s) {
    for (VertexId t = 0; t < 5; ++t) {
      if (s == t) continue;
      const auto violation = find_r_tolerance_violation(k5, *pattern, s, t, 2);
      EXPECT_FALSE(violation.has_value()) << "s=" << s << " t=" << t << " "
                                          << describe(*violation);
    }
  }
}

// ---- Theorem 4 + Theorem 5: bipartite distance-3, K_{2r-1,2r-1} tolerance --

TEST(Distance3Bipartite, DeliversWheneverDistanceAtMost3OnK33) {
  const Graph k33 = make_complete_bipartite(3, 3);
  const auto pattern = make_distance3_bipartite_pattern();
  const auto violation = find_distance_promise_violation(k33, *pattern, 3);
  EXPECT_FALSE(violation.has_value()) << describe(*violation);
}

TEST(Distance3Bipartite, DeliversOnK23AndK24) {
  const auto pattern = make_distance3_bipartite_pattern();
  for (const Graph& g : {make_complete_bipartite(2, 3), make_complete_bipartite(2, 4)}) {
    const auto violation = find_distance_promise_violation(g, *pattern, 3);
    EXPECT_FALSE(violation.has_value()) << g.to_string() << " " << describe(*violation);
  }
}

TEST(Distance3Bipartite, Theorem5_K33IsTwoTolerant) {
  // K_{2r-1,2r-1} with r=2 is K3,3.
  const Graph k33 = make_complete_bipartite(3, 3);
  const auto pattern = make_distance3_bipartite_pattern();
  for (VertexId s = 0; s < 6; ++s) {
    for (VertexId t = 0; t < 6; ++t) {
      if (s == t) continue;
      const auto violation = find_r_tolerance_violation(k33, *pattern, s, t, 2);
      EXPECT_FALSE(violation.has_value()) << "s=" << s << " t=" << t << " "
                                          << describe(*violation);
    }
  }
}

}  // namespace
}  // namespace pofl
