#pragma once

// Graph constructors used across tests, benchmarks, the adversarial
// constructions and the synthetic Topology Zoo. All stochastic builders take
// an explicit seed and are fully deterministic.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pofl {

/// Complete graph K_n.
[[nodiscard]] Graph make_complete(int n);

/// Complete bipartite graph K_{a,b}; part A = vertices [0,a), part B = [a,a+b).
[[nodiscard]] Graph make_complete_bipartite(int a, int b);

/// K_n minus the given number of links. The removed links are chosen
/// deterministically: first the edge between the two highest-id vertices,
/// then continuing in decreasing edge-id order. `make_complete_minus(5, 2)`
/// removes two links incident to vertex 4, matching the paper's K5^-2 worst
/// case (Fig. 5) when vertex 4 plays the destination.
[[nodiscard]] Graph make_complete_minus(int n, int removed_links);

/// K_{a,b} minus `removed_links` links incident to the last vertex of part B.
[[nodiscard]] Graph make_complete_bipartite_minus(int a, int b, int removed_links);

[[nodiscard]] Graph make_path(int n);
[[nodiscard]] Graph make_cycle(int n);
[[nodiscard]] Graph make_star(int leaves);

/// Wheel W_n: a cycle of n vertices plus a hub adjacent to all of them.
[[nodiscard]] Graph make_wheel(int rim);

/// w x h grid graph.
[[nodiscard]] Graph make_grid(int width, int height);

/// Ladder: two parallel paths of length n with rungs (= 2 x n grid).
[[nodiscard]] Graph make_ladder(int n);

/// Uniform random spanning tree over n vertices (random Prüfer sequence).
[[nodiscard]] Graph make_random_tree(int n, uint64_t seed);

/// Connected random graph with n vertices and m >= n-1 edges: a random tree
/// plus uniformly chosen extra edges.
[[nodiscard]] Graph make_random_connected(int n, int m, uint64_t seed);

/// Maximal outerplanar graph: a fan triangulation of an n-gon with random
/// diagonal choices. Always 2-connected, always outerplanar, m = 2n-3.
[[nodiscard]] Graph make_random_maximal_outerplanar(int n, uint64_t seed);

/// Connected outerplanar graph: maximal outerplanar minus random diagonals
/// (and possibly some cycle edges), keeping connectivity.
[[nodiscard]] Graph make_random_outerplanar(int n, int target_edges, uint64_t seed);

/// Random planar graph: a Delaunay-flavored triangulation substitute built by
/// stacking triangles (Apollonian-style), then deleting random edges while
/// keeping the graph connected. Always planar.
[[nodiscard]] Graph make_random_planar(int n, int target_edges, uint64_t seed);

/// Waxman-style geographic random graph on the unit square, patched up to be
/// connected; the classic model behind many Topology-Zoo-like networks.
[[nodiscard]] Graph make_waxman(int n, double alpha, double beta, uint64_t seed);

/// A ring with `chords` random chords — the typical shape of regional ISPs.
[[nodiscard]] Graph make_ring_with_chords(int n, int chords, uint64_t seed);

/// An outerplanar backbone of n-`hubs` nodes plus `hubs` hub nodes, each
/// connected to a random handful of backbone nodes — the hub-and-ring shape
/// of many real ISP topologies. With one hub the graph is usually not
/// outerplanar while G minus the hub is, which is exactly the paper's
/// "sometimes" class (Corollary 5 destinations).
[[nodiscard]] Graph make_outerplanar_plus_hubs(int n, int hubs, uint64_t seed);

/// Vertex set {0..n-1} of graph g as an IdSet (convenience for induced ops).
[[nodiscard]] IdSet all_vertices(const Graph& g);

/// Edge ids as a failure IdSet, convenience for tests.
[[nodiscard]] IdSet edge_set_of(const Graph& g, const std::vector<EdgeId>& edges);

/// Failure set from explicit endpoint pairs; asserts each edge exists.
[[nodiscard]] IdSet failures_between(const Graph& g,
                                     const std::vector<std::pair<VertexId, VertexId>>& pairs);

}  // namespace pofl
