# End-to-end smoke of the fault-tolerant --procs supervisor, run by ctest.
# POFL_FAULT (see src/orchestrate/fault_inject.hpp) injects deterministic
# worker failures; the supervised sweep must still merge bit-for-bit to the
# checked-in unsharded baseline (tests/baselines/cli_zoo_procs.json):
#
#   1. recovery matrix — one shard SIGKILLed / hung past --shard-timeout /
#      writing corrupt JSON / exiting non-zero on its first attempt, each
#      retried to a byte-identical merge;
#   2. retry exhaustion — a shard that always dies fails the run, and
#      --allow-partial instead emits the "incomplete" provenance block,
#      which `merge --check` refuses but a later merge with the missing
#      shard's report completes back to the golden bytes;
#   3. checkpoint/resume — a killed sweep leaves valid shard files in
#      --checkpoint-dir; the rerun resumes them (skipping the re-run) and
#      produces byte-identical output, while a rerun with different sweep
#      parameters is rejected by the checkpoint.meta guard;
#   4. diagnostics and flag validation — merge names the file, shard, and
#      byte offset of a truncated input; supervision flags without --procs
#      and malformed POFL_FAULT specs are hard errors.
#
# Usage: cmake -DPOFL_CLI=<exe> -DBASELINE=<json> -DWORK_DIR=<dir>
#              -P cli_fault_smoke.cmake

if(NOT POFL_CLI OR NOT BASELINE OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DPOFL_CLI=..., -DBASELINE=... and -DWORK_DIR=...")
endif()

set(GRAPH "${WORK_DIR}/zoo/synth-hubring-40-214.graphml")
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(READ "${BASELINE}" golden)

# Runs the CLI with POFL_FAULT=<fault> ("-" = no injection), asserts the
# exit code, and leaves stdout/stderr in cli_out/cli_err for the caller.
function(run_cli expect_success fault)
  if(fault STREQUAL "-")
    set(cmd ${POFL_CLI})
  else()
    set(cmd ${CMAKE_COMMAND} -E env "POFL_FAULT=${fault}" ${POFL_CLI})
  endif()
  execute_process(COMMAND ${cmd} ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(expect_success AND NOT rc EQUAL 0)
    message(FATAL_ERROR "POFL_FAULT=${fault} pofl_cli ${ARGN} failed (rc=${rc}): ${err}")
  endif()
  if(NOT expect_success AND rc EQUAL 0)
    message(FATAL_ERROR "POFL_FAULT=${fault} pofl_cli ${ARGN} succeeded but must fail")
  endif()
  set(cli_out "${out}" PARENT_SCOPE)
  set(cli_err "${err}" PARENT_SCOPE)
endfunction()

function(expect_golden file what)
  file(READ "${file}" bytes)
  if(NOT bytes STREQUAL golden)
    message(FATAL_ERROR "${what}: ${file} differs from the unsharded baseline bytes")
  endif()
endfunction()

function(expect_contains text needle what)
  string(FIND "${text}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${what}: expected '${needle}' in: ${text}")
  endif()
endfunction()

run_cli(TRUE - export-zoo "${WORK_DIR}/zoo")
if(NOT EXISTS "${GRAPH}")
  message(FATAL_ERROR "export-zoo did not produce ${GRAPH}")
endif()

set(SWEEP sweep "${GRAPH}" 0.05 20 --procs 4)

# 1. Recovery matrix: every injected first-attempt failure is retried to a
# merge byte-identical to the unsharded golden baseline.
run_cli(TRUE crash:1:0 ${SWEEP} --retries 2 --json "${WORK_DIR}/crash.json")
expect_golden("${WORK_DIR}/crash.json" "SIGKILL recovery")
expect_contains("${cli_err}" "killed by signal 9" "SIGKILL recovery")

run_cli(TRUE hang:2:0 ${SWEEP} --retries 2 --shard-timeout 5
        --json "${WORK_DIR}/hang.json")
expect_golden("${WORK_DIR}/hang.json" "hang recovery")
expect_contains("${cli_err}" "timed out after 5s" "hang recovery")

run_cli(TRUE corrupt:0:0 ${SWEEP} --retries 2 --json "${WORK_DIR}/corrupt.json")
expect_golden("${WORK_DIR}/corrupt.json" "corrupt-JSON recovery")
expect_contains("${cli_err}" "invalid output" "corrupt-JSON recovery")

run_cli(TRUE exit:3:0:17 ${SWEEP} --retries 1 --json "${WORK_DIR}/exit.json")
expect_golden("${WORK_DIR}/exit.json" "non-zero-exit recovery")
expect_contains("${cli_err}" "exited with status 17" "non-zero-exit recovery")

# 2a. Retry exhaustion fails the run (shard 1 dies on every attempt).
run_cli(FALSE crash:1:* ${SWEEP} --retries 1 --json "${WORK_DIR}/exhausted.json")
expect_contains("${cli_err}" "failed after 2 attempt(s)" "retry exhaustion")

# 2b. --allow-partial turns the same exhaustion into a degraded merge that
# carries the incomplete provenance block...
run_cli(TRUE crash:1:* ${SWEEP} --retries 1 --allow-partial
        --json "${WORK_DIR}/partial.json")
file(READ "${WORK_DIR}/partial.json" partial_bytes)
expect_contains("${partial_bytes}"
                "\"incomplete\":{\"shard_count\":4,\"missing_shards\":[1],\"attempts\":[2]}"
                "--allow-partial provenance")
# ...which merge refuses to --check...
run_cli(FALSE - merge "${WORK_DIR}/partial.json" --check "${BASELINE}")
expect_contains("${cli_err}" "incomplete" "merge --check of a partial result")
# ...but completes back to the golden bytes once the missing shard arrives.
run_cli(TRUE - sweep "${GRAPH}" 0.05 20 --shard 1/4 --json "${WORK_DIR}/s1.json")
run_cli(TRUE - merge "${WORK_DIR}/partial.json" "${WORK_DIR}/s1.json"
        --json "${WORK_DIR}/recovered.json" --check "${BASELINE}")
expect_golden("${WORK_DIR}/recovered.json" "partial + missing shard merge")

# 3. Checkpoint/resume: kill shard 3 with no retries; the other shards'
# outputs persist in the checkpoint dir and the rerun resumes from them,
# byte-identical to an uninterrupted run.
set(CKPT "${WORK_DIR}/ckpt")
run_cli(FALSE crash:3:* ${SWEEP} --retries 0 --checkpoint-dir "${CKPT}"
        --json "${WORK_DIR}/resumed.json")
foreach(i 0 1 2)
  if(NOT EXISTS "${CKPT}/shard_${i}_of_4.json")
    message(FATAL_ERROR "checkpoint dir lost shard ${i} after the crashed run")
  endif()
endforeach()
run_cli(TRUE - ${SWEEP} --retries 0 --checkpoint-dir "${CKPT}"
        --json "${WORK_DIR}/resumed.json")
expect_contains("${cli_out}" "resumed 3 of 4 shards" "checkpoint resume")
expect_golden("${WORK_DIR}/resumed.json" "checkpoint resume")
# A rerun with different parameters must be rejected by checkpoint.meta.
run_cli(FALSE - sweep "${GRAPH}" 0.05 10 --procs 4 --checkpoint-dir "${CKPT}")
expect_contains("${cli_err}" "different sweep" "checkpoint.meta guard")

# 4a. Merge diagnostics: a truncated input is named with its byte offset;
# an empty one as empty.
file(READ "${WORK_DIR}/s1.json" s1_bytes)
string(SUBSTRING "${s1_bytes}" 0 200 s1_head)
file(WRITE "${WORK_DIR}/truncated.json" "${s1_head}")
run_cli(FALSE - merge "${WORK_DIR}/truncated.json")
expect_contains("${cli_err}" "truncated.json" "truncated-input diagnostic")
expect_contains("${cli_err}" "byte offset 200" "truncated-input diagnostic")
file(WRITE "${WORK_DIR}/empty.json" "")
run_cli(FALSE - merge "${WORK_DIR}/empty.json")
expect_contains("${cli_err}" "empty file (0 bytes)" "empty-input diagnostic")

# 4b. Flag validation: supervision flags require --procs; malformed
# POFL_FAULT specs are hard worker errors, not silent no-ops.
run_cli(FALSE - sweep "${GRAPH}" 0.05 20 --retries 2)
run_cli(FALSE - sweep "${GRAPH}" 0.05 20 --allow-partial)
run_cli(FALSE - sweep "${GRAPH}" 0.05 20 --shard 0/2 --shard-timeout 5)
run_cli(FALSE - ${SWEEP} --retries -1)
run_cli(FALSE - ${SWEEP} --retries junk)
run_cli(FALSE - ${SWEEP} --backoff-ms -5)
run_cli(FALSE - ${SWEEP} --shard-timeout 0)
run_cli(FALSE - ${SWEEP} --shard-timeout 1e9)
run_cli(FALSE explode:1:0 sweep "${GRAPH}" 0.05 20 --shard 0/4
        --json "${WORK_DIR}/badspec.json")
expect_contains("${cli_err}" "malformed POFL_FAULT" "bad fault spec")

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli fault smoke OK")
