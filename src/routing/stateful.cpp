#include "routing/stateful.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace pofl {

int PacketState::header_bits(const Graph& g) const {
  int edge_bits = 1;
  while ((1 << edge_bits) < std::max(2, g.num_edges())) ++edge_bits;
  return g.num_vertices() + edge_bits * static_cast<int>(path.size());
}

StatefulRoutingResult route_stateful_packet(const Graph& g, const StatefulPattern& pattern,
                                            const IdSet& failures, VertexId source,
                                            Header header) {
  StatefulRoutingResult result;
  result.walk.push_back(source);
  if (source == header.destination) {
    result.outcome = RoutingOutcome::kDelivered;
    return result;
  }

  PacketState state{IdSet(g.num_vertices()), {}};
  const int step_budget = 4 * g.num_edges() + 2 * g.num_vertices() + 4;
  VertexId at = source;
  EdgeId inport = kNoEdge;
  for (int step = 0; step < step_budget; ++step) {
    const IdSet local = failures & g.incident_edge_set(at);
    const auto out = pattern.forward(g, at, inport, local, header, state);
    result.max_header_bits = std::max(result.max_header_bits, state.header_bits(g));
    if (!out.has_value()) {
      result.outcome = RoutingOutcome::kDropped;
      return result;
    }
    const EdgeId oe = *out;
    const bool incident =
        oe >= 0 && oe < g.num_edges() && (g.edge(oe).u == at || g.edge(oe).v == at);
    if (!incident || failures.contains(oe)) {
      result.outcome = RoutingOutcome::kInvalidForward;
      return result;
    }
    at = g.other_endpoint(oe, at);
    inport = oe;
    ++result.hops;
    result.walk.push_back(at);
    if (at == header.destination) {
      result.outcome = RoutingOutcome::kDelivered;
      return result;
    }
  }
  result.outcome = RoutingOutcome::kLooped;  // exceeded any sane DFS budget
  return result;
}

namespace {

class DfsRewritingPattern final : public StatefulPattern {
 public:
  [[nodiscard]] std::string name() const override { return "dfs-header-rewriting"; }

  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                              const IdSet& local_failures, const Header& header,
                                              PacketState& state) const override {
    state.visited.insert(at);
    // Deliver immediately when possible.
    if (header.destination != kNoVertex) {
      if (const auto direct = g.edge_between(at, header.destination)) {
        if (!local_failures.contains(*direct)) {
          state.path.push_back(*direct);
          return *direct;
        }
      }
    }
    // Did we arrive forward (inport extended the path) or by backtracking
    // (inport was just popped)? Forward iff the path's top is the inport.
    const bool arrived_forward =
        inport == kNoEdge || (!state.path.empty() && state.path.back() == inport);
    // Resume the port scan after the edge we last used at this node.
    const auto inc = g.incident_edges(at);
    size_t start_index = 0;
    if (!arrived_forward) {
      const auto it = std::find(inc.begin(), inc.end(), inport);
      assert(it != inc.end());
      start_index = static_cast<size_t>(it - inc.begin()) + 1;
    }
    for (size_t i = start_index; i < inc.size(); ++i) {
      const EdgeId e = inc[i];
      if (local_failures.contains(e)) continue;
      if (e == inport && arrived_forward) continue;  // do not bounce the tree edge
      const VertexId w = g.other_endpoint(e, at);
      if (state.visited.contains(w)) continue;
      state.path.push_back(e);
      return e;
    }
    // Exhausted: backtrack along the path.
    if (state.path.empty()) return std::nullopt;  // back at the source: done
    const EdgeId back = state.path.back();
    state.path.pop_back();
    return back;
  }
};

}  // namespace

std::unique_ptr<StatefulPattern> make_dfs_rewriting_pattern() {
  return std::make_unique<DfsRewritingPattern>();
}

}  // namespace pofl
