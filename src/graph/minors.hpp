#pragma once

// Minor containment. The paper's classification (§IV, §V, §VIII) hinges on
// detecting the forbidden minors K5^-1 / K3,3^-1 (destination-based routing),
// K7^-1 / K4,4^-1 (source-destination routing) and K4 / K2,3 (touring /
// outerplanarity). Exact minor testing is feasible for small hosts via
// branch and bound over branch-set assignments; for Topology-Zoo-sized hosts
// we use a minorminer-style randomized embedder (a found model is a *sound*
// certificate — it is validated structurally — while a miss leaves the
// instance unclassified, exactly as in the paper's methodology).

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace pofl {

/// A minor model: branch_sets[i] = connected, pairwise-disjoint host vertices
/// representing pattern vertex i; every pattern edge must have at least one
/// host edge between the two branch sets.
struct MinorModel {
  std::vector<std::vector<VertexId>> branch_sets;
};

/// Structural validation of a model (connectedness, disjointness, coverage
/// of every pattern edge). Used to make heuristic results sound.
[[nodiscard]] bool validate_minor_model(const Graph& host, const Graph& pattern,
                                        const MinorModel& model);

/// Exact search. Intended for hosts up to ~20 vertices; cost grows quickly.
[[nodiscard]] std::optional<MinorModel> find_minor_exact(const Graph& host, const Graph& pattern);

/// Randomized greedy embedder with restarts (minorminer-flavored): grows
/// branch sets along shortest paths, with rip-up-and-reroute repair rounds.
[[nodiscard]] std::optional<MinorModel> find_minor_heuristic(const Graph& host,
                                                             const Graph& pattern, uint64_t seed,
                                                             int restarts);

/// Dispatcher: cheap necessary conditions, then exact for small hosts,
/// heuristic otherwise. `nullopt` means "no model found", which for large
/// hosts is *not* a proof of absence.
[[nodiscard]] std::optional<MinorModel> find_minor(const Graph& host, const Graph& pattern,
                                                   uint64_t seed = 1, int restarts = 32);

/// True iff the host verifiably contains the pattern as a minor. For hosts
/// small enough for exact search this is a complete decision procedure.
[[nodiscard]] bool has_minor(const Graph& host, const Graph& pattern, uint64_t seed = 1,
                             int restarts = 32);

/// Exact polynomial-time test for K4-minor-freeness (series-parallel
/// reduction): repeatedly remove degree-<=1 vertices and suppress degree-2
/// vertices; a K4 minor exists iff some block fails to reduce away.
[[nodiscard]] bool has_k4_minor(const Graph& g);

}  // namespace pofl
