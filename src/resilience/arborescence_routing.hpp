#pragma once

// Arborescence-switching destination-based routing — the *ideal resilience*
// baseline of Chiesa et al. [40-42] that the paper positions perfect
// resilience against (§I-B1). The packet rides arborescence T_1 toward the
// root; when the next arc is dead it switches to the next arborescence whose
// arc at this node is alive (circular order).
//
// Which arborescence the packet is currently on is inferred from the in-port
// (each directed arc belongs to at most one tree), so the scheme is a valid
// static pattern of the paper's model. Ideal resilience — surviving k-1
// failures on k-connected graphs for every strategy — is an open question;
// the bench measures what this canonical circular strategy achieves.

#include <memory>
#include <vector>

#include "graph/arborescence.hpp"
#include "routing/forwarding.hpp"

namespace pofl {

class ArborescenceRoutingPattern final : public ForwardingPattern {
 public:
  /// Per-destination arborescence sets; trees[t] may be empty for vertices
  /// that never act as destinations.
  [[nodiscard]] static std::unique_ptr<ArborescenceRoutingPattern> create(
      const Graph& g, std::vector<std::vector<Arborescence>> trees_per_destination);

  /// Builds k arborescences toward every destination (k = min degree by
  /// default); nullptr if construction fails for some destination.
  [[nodiscard]] static std::unique_ptr<ArborescenceRoutingPattern> build(const Graph& g, int k,
                                                                         uint64_t seed = 1);

  [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
  [[nodiscard]] std::string name() const override { return "arborescence-switching"; }

  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                              const IdSet& local_failures,
                                              const Header& header) const override;

  [[nodiscard]] int num_trees(VertexId t) const {
    return static_cast<int>(trees_[static_cast<size_t>(t)].size());
  }

 private:
  explicit ArborescenceRoutingPattern(std::vector<std::vector<Arborescence>> trees)
      : trees_(std::move(trees)) {}

  std::vector<std::vector<Arborescence>> trees_;
};

}  // namespace pofl
