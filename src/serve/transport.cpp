#include "serve/transport.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace pofl {

bool parse_host_list(const std::string& csv, std::vector<HostSpec>& out) {
  out.clear();
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(start, comma - start);
    if (token == "local") {
      out.push_back(HostSpec{});
    } else if (token.rfind("ssh:", 0) == 0 && token.size() > 4) {
      out.push_back(HostSpec{true, token.substr(4)});
    } else {
      return false;  // empty token or unknown transport spelling
    }
    start = comma + 1;
  }
  return !out.empty();
}

std::string to_string(const HostSpec& host) {
  return host.ssh ? "ssh:" + host.host : "local";
}

std::string shell_quote(const std::string& token) {
  std::string quoted = "'";
  for (char c : token) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

pid_t spawn_shard_worker(const TransportOptions& opts, int shard, int attempt,
                         const std::string& local_exe,
                         const std::vector<std::string>& worker_args,
                         const std::string& out_path) {
  const HostSpec& host =
      opts.hosts.empty() ? HostSpec{} : opts.hosts[static_cast<size_t>(shard) % opts.hosts.size()];

  const pid_t pid = fork();
  if (pid != 0) return pid;  // parent (or fork failure: -1)

  // Child. Route the worker's stdout (its shard JSON stream) into the local
  // shard file before exec; for ssh hosts the ssh process inherits this fd
  // and relays the remote stdout into it.
  const int fd = open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0 || dup2(fd, STDOUT_FILENO) < 0) {
    std::perror("pofl transport: open shard output");
    _exit(127);
  }
  if (fd != STDOUT_FILENO) close(fd);

  if (!host.ssh) {
    // Local transport: plain exec. POFL_FAULT is inherited; the attempt
    // ordinal is per-spawn, so it is set here.
    char attempt_buf[32];
    std::snprintf(attempt_buf, sizeof(attempt_buf), "%d", attempt);
    setenv("POFL_FAULT_ATTEMPT", attempt_buf, 1);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(local_exe.c_str()));
    for (const std::string& a : worker_args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(local_exe.c_str(), argv.data());
    std::perror("pofl transport: execv");
    _exit(127);
  }

  // ssh transport: ssh hands its arguments to the remote shell as one
  // string, so build the remote command with every token quoted and the
  // fault-injection environment spliced in via `env` (ssh does not forward
  // arbitrary local environment variables).
  const std::string& exe = opts.remote_exe.empty() ? local_exe : opts.remote_exe;
  std::string cmd = "exec env POFL_FAULT_ATTEMPT=" + std::to_string(attempt);
  if (const char* fault = std::getenv("POFL_FAULT"); fault != nullptr && fault[0] != '\0') {
    cmd += " POFL_FAULT=" + shell_quote(fault);
  }
  cmd += " " + shell_quote(exe);
  for (const std::string& a : worker_args) cmd += " " + shell_quote(a);

  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(opts.ssh_command.c_str()));
  argv.push_back(const_cast<char*>(host.host.c_str()));
  argv.push_back(const_cast<char*>(cmd.c_str()));
  argv.push_back(nullptr);
  execvp(opts.ssh_command.c_str(), argv.data());
  std::perror("pofl transport: execvp ssh");
  _exit(127);
}

}  // namespace pofl
