#include "routing/simulator.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "routing/table.hpp"

namespace pofl {
namespace {

/// A hand-rolled pattern that always forwards "rightward" on a path graph.
class RightwardPattern final : public ForwardingPattern {
 public:
  [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
  [[nodiscard]] std::string name() const override { return "rightward"; }
  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId /*inport*/,
                                              const IdSet& local_failures,
                                              const Header& /*header*/) const override {
    const auto e = g.edge_between(at, at + 1);
    if (e.has_value() && !local_failures.contains(*e)) return e;
    return std::nullopt;
  }
};

TEST(Simulator, DeliversAlongPath) {
  const Graph g = make_path(5);
  RightwardPattern p;
  const auto r = route_packet(g, p, g.empty_edge_set(), 0, Header{0, 4});
  EXPECT_EQ(r.outcome, RoutingOutcome::kDelivered);
  EXPECT_EQ(r.hops, 4);
  EXPECT_EQ(r.walk, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(Simulator, DropsWhenPatternGivesNothing) {
  const Graph g = make_path(3);
  RightwardPattern p;
  IdSet f = g.empty_edge_set();
  f.insert(*g.edge_between(1, 2));
  const auto r = route_packet(g, p, f, 0, Header{0, 2});
  EXPECT_EQ(r.outcome, RoutingOutcome::kDropped);
  EXPECT_EQ(r.walk, (std::vector<VertexId>{0, 1}));
}

TEST(Simulator, ImmediateDeliveryAtDestination) {
  const Graph g = make_path(3);
  RightwardPattern p;
  const auto r = route_packet(g, p, g.empty_edge_set(), 2, Header{2, 2});
  EXPECT_EQ(r.outcome, RoutingOutcome::kDelivered);
  EXPECT_EQ(r.hops, 0);
}

/// Ping-pong pattern: always bounce to the in-port (or go right from start).
class BouncePattern final : public ForwardingPattern {
 public:
  [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
  [[nodiscard]] std::string name() const override { return "bounce"; }
  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                              const IdSet& /*failures*/,
                                              const Header& /*header*/) const override {
    if (inport != kNoEdge) return inport;
    return g.incident_edges(at).empty() ? std::nullopt
                                        : std::optional<EdgeId>(g.incident_edges(at)[0]);
  }
};

TEST(Simulator, DetectsLoops) {
  const Graph g = make_path(4);
  BouncePattern p;
  const auto r = route_packet(g, p, g.empty_edge_set(), 0, Header{0, 3});
  EXPECT_EQ(r.outcome, RoutingOutcome::kLooped);
  // 0 -> 1 -> 0 -> 1: the state (1, edge01) repeats after few steps.
  EXPECT_LE(r.hops, 4);
}

TEST(Simulator, InvalidForwardIsFlagged) {
  // Pattern that forwards onto a failed edge.
  class Cheater final : public ForwardingPattern {
   public:
    [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
    [[nodiscard]] std::string name() const override { return "cheater"; }
    [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId,
                                                const IdSet&, const Header&) const override {
      return g.incident_edges(at)[0];  // ignores failures entirely
    }
  };
  const Graph g = make_path(3);
  Cheater p;
  IdSet f = g.empty_edge_set();
  f.insert(0);
  const auto r = route_packet(g, p, f, 0, Header{0, 2});
  EXPECT_EQ(r.outcome, RoutingOutcome::kInvalidForward);
}

TEST(Simulator, MasksHeaderForDestinationOnlyModel) {
  // A destination-only pattern must not see the source.
  class SourceSpy final : public ForwardingPattern {
   public:
    mutable bool saw_source = false;
    [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
    [[nodiscard]] std::string name() const override { return "spy"; }
    [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId,
                                                const IdSet&, const Header& h) const override {
      if (h.source != kNoVertex) saw_source = true;
      const auto e = g.edge_between(at, at + 1);
      return e;
    }
  };
  const Graph g = make_path(3);
  SourceSpy p;
  (void)route_packet(g, p, g.empty_edge_set(), 0, Header{0, 2});
  EXPECT_FALSE(p.saw_source);
}

TEST(Simulator, TourDetectsSuccessOnCycle) {
  // A "always turn right" pattern on the cycle: forward to the non-inport
  // edge; visits everyone and returns.
  class AroundPattern final : public ForwardingPattern {
   public:
    [[nodiscard]] RoutingModel model() const override { return RoutingModel::kTouring; }
    [[nodiscard]] std::string name() const override { return "around"; }
    [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                                const IdSet& failures,
                                                const Header&) const override {
      for (EdgeId e : g.incident_edges(at)) {
        if (e != inport && !failures.contains(e)) return e;
      }
      return inport != kNoEdge ? std::optional<EdgeId>(inport) : std::nullopt;
    }
  };
  const Graph g = make_cycle(6);
  AroundPattern p;
  const auto r = tour_packet(g, p, g.empty_edge_set(), 2);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.missed.empty());

  // One failure: the cycle becomes a path; the bounce walk still tours.
  IdSet f = g.empty_edge_set();
  f.insert(0);
  const auto r2 = tour_packet(g, p, f, 2);
  EXPECT_TRUE(r2.success) << "walk should double back along the path";
}

TEST(Simulator, TourFailureWhenNodeUnreachableByPattern) {
  // Rightward pattern on a path never revisits the start: no tour.
  const Graph g = make_path(4);
  RightwardPattern p;
  const auto r = tour_packet(g, p, g.empty_edge_set(), 1);
  EXPECT_FALSE(r.success);
}

TEST(Simulator, TourOfIsolatedVertexSucceeds) {
  Graph g(3);
  g.add_edge(0, 1);
  BouncePattern p;
  const auto r = tour_packet(g, p, g.empty_edge_set(), 2);
  EXPECT_TRUE(r.success);  // component {2} toured trivially
}

TEST(PriorityTable, FirstAliveWins) {
  const Graph g = make_complete(4);
  PriorityTablePattern p(RoutingModel::kDestinationOnly, "test");
  p.set_rule(3, 0, kNoVertex, {1, 2, 3});
  IdSet f = g.empty_edge_set();
  f.insert(*g.edge_between(0, 1));
  const auto out = p.forward(g, 0, kNoEdge, f, Header{kNoVertex, 3});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(g.other_endpoint(*out, 0), 2);
}

TEST(PriorityTable, MissingRuleDrops) {
  const Graph g = make_complete(3);
  PriorityTablePattern p(RoutingModel::kDestinationOnly, "test");
  EXPECT_FALSE(p.forward(g, 0, kNoEdge, g.empty_edge_set(), Header{kNoVertex, 2}).has_value());
}

TEST(PriorityTable, NonNeighborsInListAreSkipped) {
  const Graph g = make_path(3);
  PriorityTablePattern p(RoutingModel::kDestinationOnly, "test");
  p.set_rule(2, 0, kNoVertex, {2, 1});  // 2 is not adjacent to 0; skip to 1
  const auto out = p.forward(g, 0, kNoEdge, g.empty_edge_set(), Header{kNoVertex, 2});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(g.other_endpoint(*out, 0), 1);
}

TEST(PriorityTable, SourceRuleOverridesDestinationRule) {
  const Graph g = make_complete(4);
  PriorityTablePattern p(RoutingModel::kSourceDestination, "test");
  p.set_rule(3, 0, kNoVertex, {1});
  p.set_rule_with_source(2, 3, 0, kNoVertex, {2});
  const auto generic = p.forward(g, 0, kNoEdge, g.empty_edge_set(), Header{1, 3});
  ASSERT_TRUE(generic.has_value());
  EXPECT_EQ(g.other_endpoint(*generic, 0), 1);
  const auto specific = p.forward(g, 0, kNoEdge, g.empty_edge_set(), Header{2, 3});
  ASSERT_TRUE(specific.has_value());
  EXPECT_EQ(g.other_endpoint(*specific, 0), 2);
}

TEST(FullTable, LocalStateRoundTrip) {
  const Graph g = make_complete(3);
  FullTablePattern p(RoutingModel::kDestinationOnly, "full");
  IdSet f = g.empty_edge_set();
  const auto state = make_local_state(g, 0, kNoEdge, f, Header{kNoVertex, 2},
                                      RoutingModel::kDestinationOnly);
  p.set_entry(state, 0);
  const auto out = p.forward(g, 0, kNoEdge, f, Header{kNoVertex, 2});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, g.incident_edges(0)[0]);
  // Different failure set -> different state -> no entry -> drop.
  IdSet f2 = g.empty_edge_set();
  f2.insert(*g.edge_between(0, 2));
  EXPECT_FALSE(p.forward(g, 0, kNoEdge, f2, Header{kNoVertex, 2}).has_value());
}

}  // namespace
}  // namespace pofl
