#pragma once

// Composition helpers for forwarding patterns.

#include <memory>
#include <vector>

#include "routing/forwarding.hpp"

namespace pofl {

/// Dispatches on header.destination to one sub-pattern per destination.
/// Used by the K5^-2 / K3,3^-2 constructions, whose per-destination tables
/// differ structurally (Corollary 5 tour vs. the Fig. 4 table vs. relaying).
class PerDestinationPattern final : public ForwardingPattern {
 public:
  PerDestinationPattern(std::string name, std::vector<std::unique_ptr<ForwardingPattern>> subs)
      : name_(std::move(name)), subs_(std::move(subs)) {}

  [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                              const IdSet& local_failures,
                                              const Header& header) const override {
    if (header.destination == kNoVertex ||
        header.destination >= static_cast<VertexId>(subs_.size()) ||
        subs_[static_cast<size_t>(header.destination)] == nullptr) {
      return std::nullopt;
    }
    return subs_[static_cast<size_t>(header.destination)]->forward(g, at, inport, local_failures,
                                                                   header);
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<ForwardingPattern>> subs_;
};

}  // namespace pofl
