#include "graph/blocks.hpp"

#include <algorithm>

namespace pofl {

std::vector<std::vector<EdgeId>> biconnected_components(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> tin(static_cast<size_t>(n), -1), low(static_cast<size_t>(n), -1);
  std::vector<std::vector<EdgeId>> blocks;
  std::vector<EdgeId> edge_stack;
  int timer = 0;

  struct Frame {
    VertexId v;
    EdgeId parent_edge;
    size_t idx;
  };

  for (VertexId root = 0; root < n; ++root) {
    if (tin[static_cast<size_t>(root)] != -1) continue;
    std::vector<Frame> stack{{root, kNoEdge, 0}};
    tin[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto inc = g.incident_edges(f.v);
      if (f.idx < inc.size()) {
        const EdgeId e = inc[f.idx++];
        if (e == f.parent_edge) continue;
        const VertexId w = g.other_endpoint(e, f.v);
        if (tin[static_cast<size_t>(w)] == -1) {
          edge_stack.push_back(e);
          tin[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] = timer++;
          stack.push_back({w, e, 0});
        } else if (tin[static_cast<size_t>(w)] < tin[static_cast<size_t>(f.v)]) {
          edge_stack.push_back(e);
          low[static_cast<size_t>(f.v)] =
              std::min(low[static_cast<size_t>(f.v)], tin[static_cast<size_t>(w)]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (stack.empty()) continue;
        Frame& p = stack.back();
        low[static_cast<size_t>(p.v)] =
            std::min(low[static_cast<size_t>(p.v)], low[static_cast<size_t>(done.v)]);
        if (low[static_cast<size_t>(done.v)] >= tin[static_cast<size_t>(p.v)]) {
          // p.v is a cut vertex (or the root): pop one block.
          std::vector<EdgeId> block;
          while (!edge_stack.empty()) {
            const EdgeId top = edge_stack.back();
            edge_stack.pop_back();
            block.push_back(top);
            if (top == done.parent_edge) break;
          }
          std::sort(block.begin(), block.end());
          blocks.push_back(std::move(block));
        }
      }
    }
  }
  return blocks;
}

}  // namespace pofl
