#include "routing/stretch.hpp"

#include <algorithm>
#include <random>

#include "graph/connectivity.hpp"
#include "routing/simulator.hpp"

namespace pofl {

StretchStats measure_stretch(const Graph& g, const ForwardingPattern& pattern, VertexId s,
                             VertexId t, int num_failures, int trials, uint64_t seed) {
  std::mt19937_64 rng(seed);
  StretchStats stats;
  double stretch_sum = 0.0;
  long long hops_sum = 0;
  std::vector<EdgeId> edges(static_cast<size_t>(g.num_edges()));
  for (size_t i = 0; i < edges.size(); ++i) edges[i] = static_cast<EdgeId>(i);

  // One context/workspace for all trials: the walk is never inspected here,
  // so every trial rides the outcome-only fast path.
  const SimContext ctx(g);
  RoutingWorkspace ws;

  for (int trial = 0; trial < trials; ++trial) {
    std::shuffle(edges.begin(), edges.end(), rng);
    IdSet failures = g.empty_edge_set();
    for (int i = 0; i < num_failures && i < g.num_edges(); ++i) {
      failures.insert(edges[static_cast<size_t>(i)]);
    }
    const auto d = distance(g, s, t, failures);
    if (!d.has_value() || *d == 0) continue;  // promise broken (or s == t)
    const FastRouteResult r = route_packet_fast(ctx, pattern, failures, s, Header{s, t}, ws);
    if (r.outcome != RoutingOutcome::kDelivered) {
      ++stats.failed_deliveries;
      continue;
    }
    ++stats.samples;
    const double stretch = static_cast<double>(r.hops) / *d;
    stretch_sum += stretch;
    hops_sum += r.hops;
    stats.max_stretch = std::max(stats.max_stretch, stretch);
  }
  if (stats.samples > 0) {
    stats.mean_stretch = stretch_sum / stats.samples;
    stats.mean_hops = static_cast<double>(hops_sum) / stats.samples;
  }
  return stats;
}

}  // namespace pofl
