#pragma once

// Random link failures — the scenario the paper's conclusion (§IX) names as
// the next research direction: "it would be interesting to chart a similar
// landscape for the practically relevant scenarios in which link failures
// are random". This module estimates, by Monte Carlo, the probability that
// a pattern delivers (or tours) conditioned on the promise holding
// (source and destination connected / component non-trivial), under i.i.d.
// per-link failure probability p.

#include <cstdint>

#include "graph/graph.hpp"
#include "routing/forwarding.hpp"

namespace pofl {

struct RandomFailureStats {
  int trials_with_promise = 0;  // failure draws where s,t stayed connected
  int delivered = 0;
  double delivery_rate = 0.0;   // delivered / trials_with_promise
  double mean_failures = 0.0;   // average |F| among promise-holding draws
  double mean_hops = 0.0;       // average hop count among deliveries
};

/// Delivery probability of a routing pattern from s to t under i.i.d. link
/// failure probability p, conditioned on s-t connectivity.
[[nodiscard]] RandomFailureStats estimate_delivery_rate(const Graph& g,
                                                        const ForwardingPattern& pattern,
                                                        VertexId s, VertexId t, double p,
                                                        int trials, uint64_t seed = 1);

/// Touring version: success probability of touring the start's surviving
/// component under i.i.d. failures.
[[nodiscard]] RandomFailureStats estimate_touring_rate(const Graph& g,
                                                       const ForwardingPattern& pattern,
                                                       VertexId start, double p, int trials,
                                                       uint64_t seed = 1);

}  // namespace pofl
