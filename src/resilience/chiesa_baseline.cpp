#include "resilience/chiesa_baseline.hpp"

#include <cassert>

namespace pofl {

namespace {

class ChiesaCompletePattern final : public ForwardingPattern {
 public:
  [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
  [[nodiscard]] std::string name() const override { return "chiesa-complete-sweep"; }

  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId /*inport*/,
                                              const IdSet& local_failures,
                                              const Header& header) const override {
    const VertexId t = header.destination;
    if (const auto direct = g.edge_between(at, t)) {
      if (!local_failures.contains(*direct)) return *direct;
    }
    // In-port independent sweep: the first alive successor in cyclic id
    // order, never through t. Skipped chords are failed edges; a functional
    // cycle of such hops would need more failures than the budget allows.
    const int n = g.num_vertices();
    for (int step = 1; step < n; ++step) {
      const VertexId w = static_cast<VertexId>((at + step) % n);
      if (w == t || w == at) continue;
      const auto e = g.edge_between(at, w);
      if (e.has_value() && !local_failures.contains(*e)) return *e;
    }
    return std::nullopt;
  }
};

class ChiesaBipartitePattern final : public ForwardingPattern {
 public:
  ChiesaBipartitePattern(int a, int b) : a_(a), b_(b) {}

  [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
  [[nodiscard]] std::string name() const override { return "chiesa-bipartite-relay"; }

  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                              const IdSet& local_failures,
                                              const Header& header) const override {
    const VertexId t = header.destination;
    if (const auto direct = g.edge_between(at, t)) {
      if (!local_failures.contains(*direct)) return *direct;
    }
    const bool t_in_a = t < a_;
    const bool at_in_a = at < a_;
    const VertexId from = inport == kNoEdge ? kNoVertex : g.other_endpoint(inport, at);

    if (at_in_a != t_in_a) {
      // `at` is on t's adjacent ("walker") side and its t-link is dead:
      // sweep relays on the opposite side, cyclically after the in-port.
      return next_on_side(g, at, from, !at_in_a, t, local_failures);
    }
    // `at` is a relay (same side as t): hand the packet to the walker after
    // the one it came from; if that link is dead, bounce for a re-try.
    if (from == kNoVertex) {
      // Packet originates on t's side: enter the walker cycle anywhere.
      return next_on_side(g, at, kNoVertex, !at_in_a, t, local_failures);
    }
    const VertexId target = cyclic_next_same_side(from, t);
    if (const auto e = g.edge_between(at, target)) {
      if (!local_failures.contains(*e)) return *e;
    }
    return inport;  // bounce back: the walker advances its relay sweep
  }

 private:
  /// First alive neighbor of `at` on side A (side_a) / B, strictly after
  /// `after` in cyclic id order (kNoVertex starts at the lowest id),
  /// excluding t.
  [[nodiscard]] std::optional<EdgeId> next_on_side(const Graph& g, VertexId at, VertexId after,
                                                   bool side_a, VertexId t,
                                                   const IdSet& local_failures) const {
    const VertexId lo = side_a ? 0 : a_;
    const VertexId hi = side_a ? a_ : a_ + b_;
    const int span = hi - lo;
    const VertexId anchor = after == kNoVertex ? hi - 1 : after;
    for (int step = 1; step <= span; ++step) {
      const VertexId w = lo + (anchor - lo + step) % span;
      if (w == t) continue;
      const auto e = g.edge_between(at, w);
      if (e.has_value() && !local_failures.contains(*e)) return *e;
    }
    return std::nullopt;
  }

  /// Successor of v in the cyclic order of its own side, never t.
  [[nodiscard]] VertexId cyclic_next_same_side(VertexId v, VertexId t) const {
    const VertexId lo = v < a_ ? 0 : a_;
    const int span = v < a_ ? a_ : b_;
    VertexId w = v;
    for (int step = 1; step <= span; ++step) {
      w = lo + (v - lo + step) % span;
      if (w != t) return w;
    }
    return v;
  }

  VertexId a_;
  VertexId b_;
};

}  // namespace

std::unique_ptr<ForwardingPattern> make_chiesa_complete_pattern() {
  return std::make_unique<ChiesaCompletePattern>();
}

std::unique_ptr<ForwardingPattern> make_chiesa_bipartite_pattern(int a, int b) {
  return std::make_unique<ChiesaBipartitePattern>(a, b);
}

}  // namespace pofl
