#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "attacks/pattern_corpus.hpp"
#include "graph/builders.hpp"
#include "resilience/algorithm1_k5.hpp"
#include "sim/scenario.hpp"

namespace pofl {
namespace {

SweepOptions threads(int n) {
  SweepOptions opts;
  opts.num_threads = n;
  opts.batch_size = 7;  // deliberately odd, to exercise partial batches
  return opts;
}

TEST(ExhaustiveFailureSource, EnumeratesEveryScenarioExactlyOnce) {
  const Graph g = make_complete(4);  // m = 6
  ExhaustiveFailureSource source(g, 2, all_ordered_pairs(g));
  // (C(6,0) + C(6,1) + C(6,2)) failure sets x 12 ordered pairs.
  EXPECT_EQ(source.total_scenarios(), (1 + 6 + 15) * 12);

  std::vector<Scenario> all;
  while (source.next_batch(5, all) > 0) {
  }
  EXPECT_EQ(static_cast<int64_t>(all.size()), source.total_scenarios());
  for (const Scenario& sc : all) {
    EXPECT_LE(sc.failures.count(), 2);
    EXPECT_NE(sc.source, sc.destination);
  }

  // reset() replays the identical stream.
  source.reset();
  std::vector<Scenario> again;
  while (source.next_batch(64, again) > 0) {
  }
  ASSERT_EQ(again.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(again[i].failures, all[i].failures);
    EXPECT_EQ(again[i].source, all[i].source);
    EXPECT_EQ(again[i].destination, all[i].destination);
  }
}

TEST(RandomFailureSourceContract, ResetReplaysIdenticalExactCountDraws) {
  const Graph g = make_complete(5);
  auto source = RandomFailureSource::exact_count(g, 3, 20, /*seed=*/21, {{0, 4}});
  std::vector<Scenario> first;
  while (source.next_batch(8, first) > 0) {
  }
  source.reset();
  std::vector<Scenario> second;
  while (source.next_batch(8, second) > 0) {
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].failures, second[i].failures) << "draw " << i;
  }
}

TEST(RandomFailureSourceContract, ZeroTrialsIsAnEmptyStream) {
  const Graph g = make_complete(4);
  auto source = RandomFailureSource::iid(g, 0.2, /*trials_per_pair=*/0, 1, all_ordered_pairs(g));
  std::vector<Scenario> out;
  EXPECT_EQ(source.next_batch(16, out), 0);
  const SweepStats stats =
      SweepEngine(threads(2)).run(g, *make_id_cyclic_pattern(RoutingModel::kDestinationOnly),
                                  source);
  EXPECT_EQ(stats.total, 0);
}

TEST(ExhaustiveFailureSource, RejectsGraphsBeyondTheMaskWidth) {
  // The old wall was 64 edges; a K12 (66 edges) now enumerates fine and the
  // limit sits at EdgeMask::kMaxBits edge ids.
  const Graph k12 = make_complete(12);
  EXPECT_NO_THROW(ExhaustiveFailureSource(k12, 1, all_ordered_pairs(k12)));
  const Graph big = make_complete(33);  // 528 edges > EdgeMask::kMaxBits
  ASSERT_GT(big.num_edges(), EdgeMask::kMaxBits);
  EXPECT_THROW(ExhaustiveFailureSource(big, 1, all_ordered_pairs(big)), std::invalid_argument);
}

TEST(SweepStats, OutcomeCountsSumToScenarioTotal) {
  const Graph g = make_cycle(6);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);
  ExhaustiveFailureSource source(g, 3, all_ordered_pairs(g));

  const SweepStats stats = SweepEngine(threads(1)).run(g, *pattern, source);
  EXPECT_EQ(stats.total, source.total_scenarios());
  EXPECT_EQ(stats.delivered + stats.looped + stats.dropped + stats.invalid,
            stats.promise_held());
  EXPECT_EQ(stats.promise_held() + stats.promise_broken, stats.total);
  // With up to 3 of 6 cycle edges down, some draws must disconnect pairs.
  EXPECT_GT(stats.promise_broken, 0);
}

TEST(SweepEngine, SingleAndMultiThreadAggregatesMatch) {
  const Graph g = make_complete(5);
  const auto pattern = make_shortest_path_pattern(RoutingModel::kSourceDestination, g);

  auto run_with = [&](int num_threads) {
    RandomFailureSource source =
        RandomFailureSource::iid(g, 0.3, 40, /*seed=*/9, all_ordered_pairs(g));
    SweepOptions opts = threads(num_threads);
    opts.compute_stretch = true;
    return SweepEngine(opts).run(g, *pattern, source);
  };

  const SweepStats one = run_with(1);
  const SweepStats many = run_with(4);
  EXPECT_EQ(one.total, many.total);
  EXPECT_EQ(one.promise_broken, many.promise_broken);
  EXPECT_EQ(one.delivered, many.delivered);
  EXPECT_EQ(one.looped, many.looped);
  EXPECT_EQ(one.dropped, many.dropped);
  EXPECT_EQ(one.invalid, many.invalid);
  EXPECT_EQ(one.failures_seen, many.failures_seen);
  EXPECT_EQ(one.hops_delivered, many.hops_delivered);
  EXPECT_EQ(one.stretch_samples, many.stretch_samples);
  EXPECT_DOUBLE_EQ(one.max_stretch, many.max_stretch);
  EXPECT_EQ(one.stretch_sum_q32, many.stretch_sum_q32);
}

TEST(SweepEngine, ExhaustiveAndSampledSweepsAgreeOnPerfectPattern) {
  // Algorithm 1 is perfectly resilient on K5 toward destination 4: every
  // sweep mode must report delivery rate exactly 1 for promise-holding
  // scenarios.
  const Graph k5 = make_complete(5);
  const auto alg1 = make_algorithm1_k5();
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId s = 0; s < 4; ++s) pairs.emplace_back(s, 4);

  ExhaustiveFailureSource exhaustive(k5, k5.num_edges(), pairs);
  const SweepStats full = SweepEngine(threads(2)).run(k5, *alg1, exhaustive);
  EXPECT_GT(full.promise_held(), 0);
  EXPECT_DOUBLE_EQ(full.delivery_rate(), 1.0);

  RandomFailureSource sampled = RandomFailureSource::iid(k5, 0.4, 500, /*seed=*/3, pairs);
  const SweepStats sub = SweepEngine(threads(2)).run(k5, *alg1, sampled);
  EXPECT_GT(sub.promise_held(), 0);
  EXPECT_DOUBLE_EQ(sub.delivery_rate(), 1.0);
}

TEST(SweepEngine, SampledRateTracksExhaustiveRate) {
  // For an imperfect pattern the Monte Carlo estimate must land near the
  // exhaustive ground truth (deterministic seed, so this is a fixed number).
  const Graph g = make_cycle(5);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);

  ExhaustiveFailureSource exhaustive(g, 1, all_ordered_pairs(g));
  const SweepStats truth = SweepEngine(threads(1)).run(g, *pattern, exhaustive);

  RandomFailureSource sampled =
      RandomFailureSource::exact_count(g, 1, 400, /*seed=*/5, all_ordered_pairs(g));
  const SweepStats estimate = SweepEngine(threads(2)).run(g, *pattern, sampled);

  EXPECT_NEAR(estimate.delivery_rate(), truth.delivery_rate(), 0.1);
}

TEST(SweepEngine, TouringScenariosTallyAsDeliveries) {
  // Right-hand-rule tour of a cycle: always leave via the non-inport edge.
  class AroundPattern final : public ForwardingPattern {
   public:
    [[nodiscard]] RoutingModel model() const override { return RoutingModel::kTouring; }
    [[nodiscard]] std::string name() const override { return "around"; }
    [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId inport,
                                                const IdSet& failures,
                                                const Header&) const override {
      for (EdgeId e : g.incident_edges(at)) {
        if (e != inport && !failures.contains(e)) return e;
      }
      return inport != kNoEdge ? std::optional<EdgeId>(inport) : std::nullopt;
    }
  };

  const Graph g = make_cycle(6);
  std::vector<Scenario> scenarios;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    scenarios.push_back(Scenario{g.empty_edge_set(), v, kNoVertex});
  }
  FixedScenarioSource source(std::move(scenarios), "tours");
  AroundPattern pattern;
  const SweepStats stats = SweepEngine(threads(2)).run(g, pattern, source);
  EXPECT_EQ(stats.total, g.num_vertices());
  EXPECT_EQ(stats.delivered, g.num_vertices());  // every tour succeeds
  EXPECT_EQ(stats.promise_broken, 0);
}

TEST(ExhaustiveFailureSource, StratumWindowCoversExactlyTheRequestedCardinalities) {
  const Graph g = make_complete(4);  // m = 6
  ExhaustiveFailureSource stratum(g, 2, 2, {{0, 1}});
  EXPECT_EQ(stratum.total_scenarios(), 15);  // C(6,2)
  std::vector<Scenario> all;
  while (stratum.next_batch(4, all) > 0) {
  }
  ASSERT_EQ(all.size(), 15u);
  for (const Scenario& sc : all) EXPECT_EQ(sc.failures.count(), 2);

  // Concatenating the strata [0,1] and [2,3] replays the full [0,3] stream.
  ExhaustiveFailureSource low(g, 0, 1, {{0, 1}});
  ExhaustiveFailureSource high(g, 2, 3, {{0, 1}});
  ExhaustiveFailureSource full(g, 0, 3, {{0, 1}});
  std::vector<Scenario> split, whole;
  while (low.next_batch(8, split) > 0) {
  }
  while (high.next_batch(8, split) > 0) {
  }
  while (full.next_batch(8, whole) > 0) {
  }
  ASSERT_EQ(split.size(), whole.size());
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(split[i].failures, whole[i].failures) << i;
  }
}

/// Gives up the moment any incident link has failed — guaranteed violations
/// whenever an off-route failure keeps the promise intact.
class PanicTowardHigher final : public ForwardingPattern {
 public:
  [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
  [[nodiscard]] std::string name() const override { return "panic"; }
  [[nodiscard]] std::optional<EdgeId> forward(const Graph& g, VertexId at, EdgeId /*inport*/,
                                              const IdSet& local_failures,
                                              const Header& header) const override {
    if (!local_failures.empty()) return std::nullopt;  // panic
    for (EdgeId e : g.incident_edges(at)) {
      if (g.other_endpoint(e, at) == at + 1 && header.destination > at) return e;
    }
    return std::nullopt;
  }
};

TEST(SweepEngineEarlyExit, FirstViolationIsIdenticalForOneAndManyThreads) {
  // The panic pattern violates perfect resilience on a path; whatever the
  // engine reports first must be bit-identical no matter the thread count.
  const Graph g = make_path(5);
  PanicTowardHigher panic;
  const ForwardingPattern* pattern = &panic;

  auto find_with = [&](int num_threads) {
    ExhaustiveFailureSource source(g, g.num_edges(), all_ordered_pairs(g));
    return SweepEngine(threads(num_threads)).find_first_violation(g, *pattern, source);
  };

  const auto one = find_with(1);
  ASSERT_TRUE(one.has_value());
  for (int n : {2, 4, 8}) {
    const auto many = find_with(n);
    ASSERT_TRUE(many.has_value()) << n << " threads";
    EXPECT_EQ(many->index, one->index) << n << " threads";
    EXPECT_EQ(many->scenario.failures, one->scenario.failures) << n << " threads";
    EXPECT_EQ(many->scenario.source, one->scenario.source) << n << " threads";
    EXPECT_EQ(many->scenario.destination, one->scenario.destination) << n << " threads";
    EXPECT_EQ(many->routing.outcome, one->routing.outcome) << n << " threads";
  }
}

TEST(SweepEngineEarlyExit, PerfectPatternYieldsNoFinding) {
  const Graph k5 = make_complete(5);
  const auto alg1 = make_algorithm1_k5();
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId s = 0; s < 4; ++s) pairs.emplace_back(s, 4);
  ExhaustiveFailureSource source(k5, k5.num_edges(), pairs);
  EXPECT_FALSE(
      SweepEngine(threads(4)).find_first_violation(k5, *alg1, source).has_value());
}

TEST(SweepEngineEarlyExit, FindingIndexIsTheMinimalStreamPosition) {
  // Plant violations at known stream positions via a fixed source: a
  // disconnected pair first (promise broken — not a violation), then two
  // undeliverable scenarios. The earliest violation, index 1, must win.
  const Graph g = make_path(3);  // edges 0:(0-1), 1:(1-2)
  IdSet cut = g.empty_edge_set();
  cut.insert(1);
  class NeverForward final : public ForwardingPattern {
   public:
    [[nodiscard]] RoutingModel model() const override { return RoutingModel::kDestinationOnly; }
    [[nodiscard]] std::string name() const override { return "never"; }
    [[nodiscard]] std::optional<EdgeId> forward(const Graph&, VertexId, EdgeId, const IdSet&,
                                                const Header&) const override {
      return std::nullopt;
    }
  };
  NeverForward never;
  FixedScenarioSource source({
      Scenario{cut, 0, 2},                  // promise broken
      Scenario{cut, 0, 1},                  // dropped -> violation at index 1
      Scenario{g.empty_edge_set(), 0, 2},   // also a violation, later
  });
  const auto finding = SweepEngine(threads(3)).find_first_violation(g, never, source);
  ASSERT_TRUE(finding.has_value());
  EXPECT_EQ(finding->index, 1);
  EXPECT_EQ(finding->scenario.source, 0);
  EXPECT_EQ(finding->scenario.destination, 1);
  EXPECT_EQ(finding->routing.outcome, RoutingOutcome::kDropped);
}

TEST(SweepReportPerPair, RowsSumToTotalsAndMatchPlainRun) {
  const Graph g = make_cycle(6);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);

  ExhaustiveFailureSource source(g, 2, all_ordered_pairs(g));
  const SweepStats plain = SweepEngine(threads(1)).run(g, *pattern, source);

  auto report_with = [&](int num_threads) {
    ExhaustiveFailureSource src(g, 2, all_ordered_pairs(g));
    return SweepEngine(threads(num_threads)).run_report(g, *pattern, src);
  };
  const SweepReport one = report_with(1);
  const SweepReport many = report_with(4);

  EXPECT_EQ(one.per_pair.size(), all_ordered_pairs(g).size());
  SweepStats sum;
  for (const PairStats& row : one.per_pair) sum.merge(row.stats);
  EXPECT_EQ(sum.total, plain.total);
  EXPECT_EQ(sum.delivered, plain.delivered);
  EXPECT_EQ(sum.promise_broken, plain.promise_broken);
  EXPECT_EQ(one.totals.total, plain.total);
  EXPECT_EQ(one.totals.delivered, plain.delivered);

  ASSERT_EQ(many.per_pair.size(), one.per_pair.size());
  for (size_t i = 0; i < one.per_pair.size(); ++i) {
    EXPECT_EQ(many.per_pair[i].source, one.per_pair[i].source);
    EXPECT_EQ(many.per_pair[i].destination, one.per_pair[i].destination);
    EXPECT_EQ(many.per_pair[i].stats.total, one.per_pair[i].stats.total);
    EXPECT_EQ(many.per_pair[i].stats.delivered, one.per_pair[i].stats.delivered);
    EXPECT_EQ(many.per_pair[i].stats.promise_broken, one.per_pair[i].stats.promise_broken);
  }
}

TEST(SweepEngineCustomPromise, PromisePredicateNarrowsTheScenarioSpace) {
  // A promise that rejects every scenario tallies everything promise_broken.
  const Graph g = make_cycle(4);
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);
  ExhaustiveFailureSource source(g, 1, all_ordered_pairs(g));
  SweepOptions opts = threads(2);
  opts.promise = [](const Graph&, const Scenario&) { return false; };
  const SweepStats stats = SweepEngine(opts).run(g, *pattern, source);
  EXPECT_EQ(stats.promise_broken, stats.total);
  EXPECT_EQ(stats.delivered, 0);
}

TEST(AdversarialCorpusSource, MinedDefeatsKeepThePromiseAndDefeatTheirPattern) {
  const Graph g = make_cycle(5);
  AdversarialCorpusSource source(g, RoutingModel::kDestinationOnly, /*max_budget=*/2,
                                 /*random_variants=*/1, /*seed=*/1);
  const auto& names = source.defeated_patterns();

  // Replay the mined library against one corpus member: by construction every
  // scenario keeps its (s, t) connected, so nothing can be promise-broken.
  const auto pattern = make_id_cyclic_pattern(RoutingModel::kDestinationOnly);
  source.reset();
  const SweepStats stats = SweepEngine(threads(1)).run(g, *pattern, source);
  EXPECT_EQ(stats.total, static_cast<int64_t>(names.size()));
  EXPECT_EQ(stats.promise_broken, 0);
  EXPECT_EQ(stats.delivered + stats.looped + stats.dropped + stats.invalid, stats.total);
}

}  // namespace
}  // namespace pofl
